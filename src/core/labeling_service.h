#ifndef AMS_CORE_LABELING_SERVICE_H_
#define AMS_CORE_LABELING_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/decision_plane.h"
#include "core/predictor.h"
#include "core/schedule_kernel.h"
#include "data/oracle.h"
#include "data/stream.h"
#include "obs/trace.h"
#include "sched/policy.h"
#include "sched/policy_registry.h"

namespace ams::core {

/// How a labeling session executes models for one item.
enum class ExecutionMode {
  /// Q-greedy, END-stop (§V intro). Predictor-driven, unconstrained.
  kGreedy,
  /// Serial scheduling under a deadline: Algorithm 1 when the session has a
  /// predictor, or any registry policy when it has one of those.
  kSerial,
  /// Algorithm 2 under deadline + memory. Predictor-driven.
  kParallel,
  /// Random feasible packing under deadline + memory (§VI-G baseline).
  kParallelRandom,
};

/// One unit of labeling work. Live sessions label scenes (production
/// information pattern); oracle-backed sessions label stored items by index
/// (offline evaluation). `chunk_id` marks correlated streams.
struct WorkItem {
  const zoo::LatentScene* scene = nullptr;
  int item = -1;
  int chunk_id = -1;

  /// The scene must stay alive until the item has been labeled (a pointer,
  /// not a reference, so temporaries are rejected at the call site).
  static WorkItem Live(const zoo::LatentScene* scene) {
    WorkItem w;
    w.scene = scene;
    return w;
  }
  static WorkItem Stored(int item, int chunk_id = -1) {
    WorkItem w;
    w.item = item;
    w.chunk_id = chunk_id;
    return w;
  }
};

/// Outcome of labeling one item through a session.
struct LabelOutcome {
  ScheduleResult schedule;
  /// Value recall against stored ground truth; -1 when the item was live
  /// (no ground truth to compare against).
  double recall = -1.0;
};

/// A-priori profile of one item's labeling work, cheap enough to compute at
/// admission time (no model execution, no Q-forward): what value recall the
/// scheduler can expect to realize on the item and what it is predicted to
/// cost. The ratio is the item's value density — marginal recall per unit
/// cost, the currency the paper's scheduler optimizes — which
/// serve::ValueEstimator feeds into admission ordering.
struct WorkEstimate {
  /// Expected achievable value recall in [0, 1]; 0 when no model is
  /// expected to produce valuable output on the item.
  double expected_value = 0.0;
  /// Predicted seconds of model execution to realize that value.
  double expected_cost_s = 0.0;
};

/// The public facade of the framework: one session-based API over every
/// scheduling regime the paper describes — greedy, Algorithm 1, Algorithm 2,
/// and all registry policies — on live scenes or stored items, one at a
/// time, in batches, or as a stream. Construct via LabelingServiceBuilder.
///
/// Threading model: Submit() runs inline and keeps one session-level policy
/// instance, so chunked-stream policies accumulate knowledge across
/// consecutive submissions. SubmitBatch()/Run() fan out over a
/// util::ThreadPool with per-worker policy/predictor instances and a
/// deterministic partition (whole chunks never split across workers), so
/// results are reproducible for a fixed seed and worker count. A session
/// parallelizes internally but is not itself thread-safe: issue
/// Submit/SubmitBatch/Run calls one at a time (the live-item sequence and
/// the pooled per-worker predictor clones are shared session state).
///
/// Execution plane knobs (see the builder): WithKernelMode(kLean) skips
/// result materialization for recall-only paths, WithBatchedPrediction(true)
/// lets each SubmitBatch/Run worker co-schedule its items and coalesce their
/// Q-queries into one batched forward pass per event round, and
/// WithReplayCache(true) shares memoized per-item replay contexts across
/// workers and batches. None of the knobs changes any outcome — only cost.
class LabelingService {
 public:
  using Sink = std::function<void(const WorkItem&, const LabelOutcome&)>;
  using PolicyFactory =
      std::function<std::unique_ptr<sched::SchedulingPolicy>()>;

  LabelingService(LabelingService&&) = default;
  LabelingService& operator=(LabelingService&&) = default;

  /// Labels one item inline.
  LabelOutcome Submit(const WorkItem& item);
  LabelOutcome Submit(const zoo::LatentScene& scene) {
    return Submit(WorkItem::Live(&scene));  // used before Submit returns
  }

  /// Labels a batch, fanned out over the session's workers. Result order
  /// matches item order.
  std::vector<LabelOutcome> SubmitBatch(const std::vector<WorkItem>& items);

  /// Drains an oracle-backed stream through the session (chunk ids taken
  /// from the stream), invoking `sink` once per item in arrival order after
  /// all work completes. Returns the number of items labeled.
  int Run(data::DataStream* stream, const Sink& sink);

  const zoo::ModelZoo& zoo() const { return *config_.zoo; }
  const data::Oracle* oracle() const { return config_.oracle; }
  ExecutionMode mode() const { return config_.mode; }
  KernelMode kernel_mode() const { return config_.kernel_mode; }
  bool batched_prediction() const { return config_.batch_predictions; }
  bool quantized_inference() const { return config_.quantized_inference; }
  bool replay_cache_enabled() const { return replay_cache_ != nullptr; }
  const ScheduleConstraints& constraints() const {
    return config_.constraints;
  }
  int worker_count() const { return config_.workers; }
  /// Registry name of the session's policy; empty for predictor sessions
  /// and custom factories.
  const std::string& policy_name() const { return config_.policy_name; }

  /// The policy instance behind sequential Submit() calls (created on first
  /// use), for diagnostics like RuleBasedPolicy::rule_fire_counts(); nullptr
  /// for predictor sessions. SubmitBatch/Run workers use their own
  /// instances, which are not observable here.
  sched::SchedulingPolicy* session_policy();

  /// Profiles one item's work from what is knowable before any model runs:
  /// stored items read the oracle's per-item profile (valuable-model
  /// execution time, whether any value exists), live items read the scene
  /// structure against the zoo's task costs (which tasks are likely to emit
  /// valuable labels, and what those tasks' models cost). Thread-safe and
  /// allocation-free; the admission-time touchpoint behind
  /// serve::ProfileValueEstimator.
  WorkEstimate EstimateWork(const WorkItem& item) const;

  /// The session hand-off point for asynchronous backends: a worker-scoped
  /// stepper that multiplexes a dynamic set of in-flight items by advancing
  /// their resumable ScheduleKernels event-by-event. Admit() prepares an
  /// item and assigns it a ticket; each Tick() refreshes every resident
  /// item's Q slot with ONE batched DecisionPlane forward pass, then steps
  /// every kernel past one finish event and reports completed items. Items
  /// are independent, so interleaving them cannot change any outcome — per
  /// item, a stepper run is bit-identical to Submit() with the same
  /// stream_id.
  ///
  /// A stepper is single-threaded (one per serve worker, like a SubmitBatch
  /// worker); distinct steppers of one session may run concurrently. Create
  /// via NewItemStepper. (Defined below the class — it uses the session's
  /// private decision-state machinery.)
  class ItemStepper;

  /// Creates a stepper bound to this session's configuration. Stateful
  /// policy sessions are rejected (a policy accumulates knowledge across an
  /// item sequence; multiplexed stepping would interleave that history) —
  /// steppers serve predictor-driven and random-packing sessions.
  /// `worker_index` keys the per-worker predictor clone pool; concurrent
  /// steppers must use distinct indices. Do not run SubmitBatch/Run on the
  /// session while steppers are live (they share the clone pool).
  std::unique_ptr<ItemStepper> NewItemStepper(int worker_index);

 private:
  friend class LabelingServiceBuilder;

  /// Validated session configuration (plain values; copyable).
  struct Config {
    const zoo::ModelZoo* zoo = nullptr;
    const data::Oracle* oracle = nullptr;
    ModelValuePredictor* predictor = nullptr;
    /// Per-worker policy constructor; the worker index decorrelates seeded
    /// policies across workers (registry path only — custom factories get
    /// called as-is).
    std::function<std::unique_ptr<sched::SchedulingPolicy>(int)>
        policy_factory;
    std::string policy_name;
    ScheduleConstraints constraints;
    ExecutionMode mode = ExecutionMode::kGreedy;
    KernelMode kernel_mode = KernelMode::kFull;
    bool batch_predictions = false;
    bool cache_replay = false;
    bool quantized_inference = false;
    int workers = 0;  // <= 0: resolved to hardware concurrency in Build()
    uint64_t seed = 1;
    double recall_target = -1.0;
  };

  explicit LabelingService(Config config);

  // One worker's decision-making state (policies and rl agents are stateful
  // and must not be shared across threads). Predictor clones are owned by
  // the session's PredictorPool, keyed by worker index.
  struct DecisionState {
    ModelValuePredictor* predictor = nullptr;
    std::unique_ptr<sched::SchedulingPolicy> policy;
  };
  DecisionState MakeDecisionState(bool clone_predictor,
                                  int worker_index) const;

  /// Everything one item's kernel run needs, heap-allocated so the hooks'
  /// captured pointers stay stable (defined in the .cc).
  struct ItemRun;
  /// Session-level memoized replay contexts, shared across workers (defined
  /// in the .cc).
  struct ReplayCacheState;
  /// Session-level per-worker predictor clones, reused across SubmitBatch
  /// calls — cloning a Q-net serializes megabytes of weights, far too
  /// expensive to repeat per batch (defined in the .cc).
  struct PredictorPool;

  /// Builds the execution context, picker and hooks for one item. `slot`
  /// routes the picker's Q-queries through a shared DecisionPlane (batched
  /// co-scheduling); null keeps a private scalar path.
  std::unique_ptr<ItemRun> PrepareItem(const WorkItem& item,
                                       DecisionState* state,
                                       uint64_t stream_id,
                                       DecisionPlane::Slot* slot) const;

  /// Sampled state-feature rows for int8 calibration: the all-zero row plus
  /// progressive label-states replayed from stored oracle outputs (or a
  /// seeded density sweep of random binary rows without an oracle), so the
  /// per-layer activation scales see the input distribution serving will.
  std::vector<std::vector<float>> BuildCalibrationRows() const;

  /// Labels one item with the given decision state. `stream_id` seeds the
  /// random-packing mode (the stored item id, or the submission sequence
  /// number for live items).
  LabelOutcome RunOne(const WorkItem& item, DecisionState* state,
                      uint64_t stream_id) const;

  /// Co-schedules one worker's items: steps every kernel in rounds and
  /// refreshes a shared DecisionPlane between rounds, so each event round
  /// costs one batched forward pass instead of one pass per item.
  void RunCoScheduled(const std::vector<const WorkItem*>& items,
                      const std::vector<uint64_t>& stream_ids,
                      const std::vector<LabelOutcome*>& outcomes,
                      DecisionState* state) const;

  Config config_;
  /// Present iff the session caches replay contexts (Config::cache_replay);
  /// shared_ptr so the service stays movable with an incomplete type.
  std::shared_ptr<ReplayCacheState> replay_cache_;
  /// Present iff the session has a clonable predictor.
  std::shared_ptr<PredictorPool> predictor_pool_;

  // Session-level state for sequential Submit().
  DecisionState session_state_;
  bool session_state_ready_ = false;
  uint64_t live_sequence_ = 0;
};

class LabelingService::ItemStepper {
 public:
  /// A finished item: the ticket Admit() returned and its outcome.
  struct Completion {
    uint64_t ticket = 0;
    LabelOutcome outcome;
  };

  ~ItemStepper();
  ItemStepper(const ItemStepper&) = delete;
  ItemStepper& operator=(const ItemStepper&) = delete;

  /// Takes an item in flight and returns its ticket. `stream_id` seeds
  /// stream-dependent pickers; pass the stored item id for replayed items
  /// (Submit() parity) or a unique admission sequence number for live
  /// scenes. Items whose work is already done (recall target met before any
  /// execution) complete at the next Tick().
  uint64_t Admit(const WorkItem& item, uint64_t stream_id);

  /// One cooperative tick over the resident set: batched Q refresh, one
  /// kernel step each, completions appended to `completed`.
  void Tick(std::vector<Completion>* completed);

  /// Items currently in flight (including ones finishing next Tick).
  int resident() const;
  bool idle() const { return resident() == 0; }

  /// What the last traced Tick() measured, published so the serving runtime
  /// can fold phase durations into its metrics without timing the tick a
  /// second time. `traced` is false (and the rest zero) when no tracer was
  /// attached, the tracer was disabled, or the tick had nothing resident.
  struct TickStats {
    bool traced = false;
    double tick_s = 0.0;
    double forward_s = 0.0;
    int forward_rows = 0;
    int memo_hits = 0;
    /// Unique rows in the cluster-coalesced batch this tick's forward rode
    /// in (0 when the stepper issued its own forward — no executor
    /// attached — or the round was empty). Rows per cluster batch, not per
    /// stepper: the coalescer's amortization is only visible here.
    int cluster_rows = 0;
    int resident = 0;
    int completed = 0;
    std::size_t arena_used = 0;
  };

  /// Attaches the tracing seam: while `tracer` is enabled, every non-empty
  /// Tick() records a kTick span (and a kForward span around the batched Q
  /// refresh when the stepper is predictor-driven) into `lane` stamped on
  /// `clock`, and publishes TickStats. All three must outlive the stepper;
  /// recording stays free of heap allocations (preallocated ring slots), so
  /// the zero-allocation steady-state tick contract holds with tracing on.
  void AttachTracer(const obs::Tracer* tracer, obs::TraceBuffer* lane,
                    const util::Clock* clock);

  /// Hands this stepper's per-tick forward round to an external executor
  /// (serve::ForwardCoalescer handle) instead of the plane's own Prefetch.
  /// While attached, EVERY Tick() — including empty ones — runs one
  /// ExecuteRound so barrier-style executors see each participant exactly
  /// once per tick. Only meaningful for predictor-driven steppers; the
  /// executor must outlive the stepper. Pass nullptr to detach.
  void AttachForwardExecutor(ForwardRoundExecutor* executor);

  /// True when this stepper schedules through a Q predictor (and thus has a
  /// decision plane a forward executor can coalesce).
  bool predictor_driven() const { return plane_ != nullptr; }

  const TickStats& last_tick_stats() const { return tick_stats_; }

 private:
  friend class LabelingService;
  ItemStepper(const LabelingService* session, int worker_index);

  /// Stamps args on the tick span, publishes TickStats, and closes it.
  void FinishTickSpan(obs::ScopedSpan* span, int resident_at_entry,
                      int completed_this_tick);

  struct InFlight {
    uint64_t ticket = 0;
    std::unique_ptr<ItemRun> run;
    std::unique_ptr<ScheduleKernel> kernel;
    DecisionPlane::Slot* slot = nullptr;  // owned by plane_
  };

  const LabelingService* session_;
  DecisionState state_;
  /// Present iff the session is predictor-driven: the coalescing point for
  /// the per-tick batched forward pass.
  std::unique_ptr<DecisionPlane> plane_;
  /// Worker-affine scratch for the plane's per-tick batch buffers, rewound
  /// at the top of every Tick so steady-state ticks never malloc.
  util::Arena arena_;
  std::vector<InFlight> inflight_;
  /// Completions waiting for the next Tick (items skipped at admission).
  std::vector<Completion> pending_;
  std::vector<DecisionPlane::SlotView> views_;  // Tick scratch
  uint64_t next_ticket_ = 0;
  /// Tracing seam (AttachTracer): null until attached. The backend args for
  /// kForward spans are resolved once at attach time — steppers serve from
  /// a frozen predictor clone, so tier/int8 cannot change afterwards.
  const obs::Tracer* tracer_ = nullptr;
  obs::TraceBuffer* trace_lane_ = nullptr;
  const util::Clock* trace_clock_ = nullptr;
  int backend_tier_ = -1;
  bool backend_int8_ = false;
  /// External forward round executor (AttachForwardExecutor): null means
  /// the stepper issues its own Prefetch per tick.
  ForwardRoundExecutor* forward_executor_ = nullptr;
  TickStats tick_stats_;
};

/// Builder of LabelingService sessions. Exactly one decision source —
/// WithPredictor or WithPolicy/WithPolicyFactory — must be configured for
/// kGreedy/kSerial/kParallel (kParallelRandom takes none); Build() validates
/// the whole configuration and crashes with a clear message on an invalid
/// one.
class LabelingServiceBuilder {
 public:
  /// `zoo` must outlive the built service.
  explicit LabelingServiceBuilder(const zoo::ModelZoo* zoo);

  /// Replays stored outputs of `oracle` for WorkItem::Stored submissions and
  /// reports value recall. The oracle must wrap the same zoo.
  LabelingServiceBuilder& WithOracle(const data::Oracle* oracle);

  /// Predictor-driven scheduling (greedy / Algorithm 1 / Algorithm 2).
  /// The predictor must outlive the service; it is cloned per worker when it
  /// supports ClonePredictor (rl::Agent does).
  LabelingServiceBuilder& WithPredictor(ModelValuePredictor* predictor);

  /// Policy-driven serial scheduling, resolved through
  /// sched::PolicyRegistry::Global(). Unknown names fail in Build(). When
  /// `options.predictor` is set and clonable, every worker's policy gets a
  /// private predictor clone.
  LabelingServiceBuilder& WithPolicy(const std::string& name,
                                     sched::PolicyOptions options = {});

  /// Policy-driven serial scheduling with a custom factory (called once per
  /// worker; instances are never shared across threads).
  LabelingServiceBuilder& WithPolicyFactory(
      LabelingService::PolicyFactory factory);

  LabelingServiceBuilder& WithConstraints(const ScheduleConstraints& c);
  LabelingServiceBuilder& WithMode(ExecutionMode mode);
  /// KernelMode::kLean skips per-execution output copies and the
  /// recalled-label map: LabelOutcome keeps makespan, value, execution count
  /// and recall but `schedule.executions`/`recalled_labels` stay empty. The
  /// offline recall-only paths (deadline/memory sweeps) run lean.
  LabelingServiceBuilder& WithKernelMode(KernelMode mode);
  /// Coalesces the Q-queries of each SubmitBatch/Run worker's items into one
  /// batched forward pass per event round (predictor-driven sessions only;
  /// outcomes are bitwise identical to the scalar path).
  LabelingServiceBuilder& WithBatchedPrediction(bool batch);
  /// Serves each worker's pooled clone as a FROZEN int8-quantized snapshot
  /// of the predictor (ModelValuePredictor::CloneQuantized), calibrated
  /// against sampled state rows at first use. Quantized clones trade exact
  /// Q values for throughput: action ranking — hence recall — stays within
  /// tolerance, but outcomes are no longer bitwise identical to fp32, and
  /// later predictor weight changes are NOT picked up (the snapshot is
  /// frozen). Falls back to fp32 clones when the predictor has no quantized
  /// form. Needs WithPredictor.
  LabelingServiceBuilder& WithQuantizedInference(bool quantized);
  /// Memoizes per-item replay contexts for the session's lifetime, shared
  /// across workers and batches: each (item, model) execution is fetched
  /// once and served by reference thereafter. Needs WithOracle.
  LabelingServiceBuilder& WithReplayCache(bool cache);
  /// Worker threads for SubmitBatch/Run; <= 0 means hardware concurrency.
  LabelingServiceBuilder& WithWorkers(int workers);
  LabelingServiceBuilder& WithSeed(uint64_t seed);
  /// Oracle-backed serial sessions stop an item once this value recall is
  /// reached (the ground-truth stop of §VI-B); < 0 disables.
  LabelingServiceBuilder& WithRecallTarget(double target);

  /// Validates the configuration and builds the session.
  LabelingService Build() const;

 private:
  LabelingService::Config config_;
  std::string pending_policy_name_;
  sched::PolicyOptions pending_policy_options_;
  bool has_pending_policy_ = false;
};

}  // namespace ams::core

#endif  // AMS_CORE_LABELING_SERVICE_H_
