#ifndef AMS_CORE_VALUE_H_
#define AMS_CORE_VALUE_H_

#include <vector>

#include "data/oracle.h"

namespace ams::core {

/// Incremental evaluator of the submodular objective f(S, d) of Eq. (1).
///
/// Label profits are confidences (§IV-A); with overlapping model outputs the
/// profit credited for a label is the best confidence among *executed*
/// models, so f(S, d) = sum over labels of max_{m in S} conf_m(label) over
/// valuable outputs. This makes f monotone and submodular (Lemma 1), and
/// f(M, d) equals Oracle::TrueTotalValue.
class ValueAccumulator {
 public:
  /// Binds to one item of an oracle.
  ValueAccumulator(const data::Oracle* oracle, int item);

  /// Marginal gain f(S ∪ {m}) − f(S) if `model` were executed now.
  double MarginalGain(int model) const;

  /// Executes the model: applies its valuable outputs. Returns the gain.
  double AddModel(int model);

  /// Current f(S, d).
  double Value() const { return value_; }

  /// Current value recall f(S, d) / f(M, d); 1.0 when the item has no
  /// valuable labels at all.
  double Recall() const;

  bool Added(int model) const { return added_[static_cast<size_t>(model)]; }

  const data::Oracle& oracle() const { return *oracle_; }
  int item() const { return item_; }

 private:
  const data::Oracle* oracle_;
  int item_;
  double value_ = 0.0;
  std::vector<double> best_conf_;  // per label id, 0 when not yet emitted
  std::vector<bool> added_;
};

/// True once `acc` has reached `target` value recall, within the shared
/// stop tolerance used by every ground-truth-driven stop condition (§VI-B);
/// `target` < 0 disables the check.
inline bool RecallTargetReached(const ValueAccumulator& acc, double target) {
  return target >= 0.0 && acc.Recall() >= target - 1e-12;
}

}  // namespace ams::core

#endif  // AMS_CORE_VALUE_H_
