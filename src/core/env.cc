#include "core/env.h"

#include "util/check.h"

namespace ams::core {

SchedulingEnv::SchedulingEnv(const data::Oracle* oracle, const EnvConfig& config)
    : oracle_(oracle),
      config_(config),
      state_(oracle->zoo().labels().total_labels(), oracle->num_models()),
      value_(oracle, 0) {
  AMS_CHECK(oracle != nullptr);
}

void SchedulingEnv::Reset(int item) {
  AMS_CHECK(item >= 0 && item < oracle_->num_items());
  item_ = item;
  state_.Reset();
  value_ = ValueAccumulator(oracle_, item);
  done_ = false;
  time_spent_ = 0.0;
}

bool SchedulingEnv::ActionValid(int action) const {
  if (done_) return false;
  if (action == end_action()) return config_.enable_end_action;
  return action >= 0 && action < num_models() && !state_.model_executed(action);
}

std::vector<int> SchedulingEnv::ValidActions() const {
  std::vector<int> valid;
  if (done_) return valid;
  for (int m = 0; m < num_models(); ++m) {
    if (!state_.model_executed(m)) valid.push_back(m);
  }
  if (config_.enable_end_action) valid.push_back(end_action());
  return valid;
}

StepResult SchedulingEnv::Step(int action) {
  AMS_CHECK(!done_, "step after episode end");
  StepResult result;
  if (action == end_action()) {
    AMS_CHECK(config_.enable_end_action, "END action disabled");
    result.reward = kEndActionReward;
    result.done = true;
    done_ = true;
    return result;
  }
  AMS_CHECK(ActionValid(action), "invalid action");
  result.fresh = state_.Apply(action, oracle_->Output(item_, action));
  value_.AddModel(action);
  time_spent_ += oracle_->ExecutionTime(item_, action);
  result.reward = ModelReward(result.fresh,
                              oracle_->zoo().model(action).theta,
                              config_.shaping);
  if (state_.num_executed() == num_models()) {
    result.done = true;
    done_ = true;
  }
  return result;
}

}  // namespace ams::core
