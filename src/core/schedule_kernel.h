#ifndef AMS_CORE_SCHEDULE_KERNEL_H_
#define AMS_CORE_SCHEDULE_KERNEL_H_

#include <functional>
#include <limits>
#include <vector>

#include "core/labeling_state.h"
#include "core/predictor.h"
#include "data/oracle.h"
#include "zoo/latent_scene.h"
#include "zoo/model_zoo.h"

namespace ams::core {

/// Per-item resource constraints (Eq. 2's "constraints on S").
struct ScheduleConstraints {
  /// Deadline per item in seconds (Algorithm 1 / 2). Infinity = unlimited.
  double time_budget_s = std::numeric_limits<double>::infinity();
  /// GPU memory budget in MB for parallel execution (Algorithm 2 only).
  double memory_budget_mb = std::numeric_limits<double>::infinity();

  /// Crashes with a clear message on NaN or negative budgets (a negative or
  /// NaN budget would otherwise silently schedule nothing).
  void Validate() const;
};

/// One scheduled model execution.
struct ExecutionRecord {
  int model_id = -1;
  double start_s = 0.0;
  double finish_s = 0.0;
  /// Raw model output (labels + confidences, incl. low-confidence ones).
  std::vector<zoo::LabelOutput> outputs;
  /// O'(m, d): newly emitted valuable labels.
  std::vector<zoo::LabelOutput> fresh;
  /// Reward of Eq. (3) for this execution.
  double reward = 0.0;
};

/// Outcome of scheduling one item.
struct ScheduleResult {
  /// Executions in finish order (serial schedules: also start order).
  std::vector<ExecutionRecord> executions;
  /// Serial total time (Algorithm 1) or parallel makespan (Algorithm 2).
  double makespan_s = 0.0;
  /// f(S, d): sum over recalled labels of the best confidence obtained.
  double value = 0.0;
  /// Union of valuable labels with their best confidences.
  std::vector<zoo::LabelOutput> recalled_labels;
  /// Peak simultaneous memory use, for asserting the constraint held.
  double peak_mem_mb = 0.0;
};

/// Execution substrate of the scheduling kernel: where model outputs and
/// execution times come from. Two implementations cover the repo's two
/// information patterns — live inference on a scene (production) and replay
/// of stored oracle outputs (offline evaluation, §VI-A).
class ExecutionContext {
 public:
  virtual ~ExecutionContext() = default;

  virtual const zoo::ModelZoo& zoo() const = 0;
  int num_models() const { return zoo().num_models(); }
  const zoo::ModelSpec& model(int m) const { return zoo().model(m); }

  /// Planning-time estimate used by feasibility checks ("does m still fit
  /// the budget"). Live scheduling only knows the spec's mean time; replay
  /// knows the realized draw.
  virtual double PlannedTime(int model) const = 0;

  /// Realized duration charged when the model actually runs.
  virtual double RealizedTime(int model) const = 0;

  /// Runs the model and returns its raw outputs.
  virtual std::vector<zoo::LabelOutput> Execute(int model) const = 0;
};

/// Live inference on one scene via ModelZoo::Execute. Never peeks at outputs
/// of models it did not select, matching a production deployment.
class LiveExecutionContext : public ExecutionContext {
 public:
  LiveExecutionContext(const zoo::ModelZoo* zoo, const zoo::LatentScene* scene);

  const zoo::ModelZoo& zoo() const override { return *zoo_; }
  double PlannedTime(int model) const override;
  double RealizedTime(int model) const override;
  std::vector<zoo::LabelOutput> Execute(int model) const override;

 private:
  const zoo::ModelZoo* zoo_;
  const zoo::LatentScene* scene_;
};

/// Replay of one stored item: outputs and times come from the oracle, so
/// planned and realized times coincide.
class ReplayExecutionContext : public ExecutionContext {
 public:
  ReplayExecutionContext(const data::Oracle* oracle, int item);

  const zoo::ModelZoo& zoo() const override { return oracle_->zoo(); }
  double PlannedTime(int model) const override;
  double RealizedTime(int model) const override;
  std::vector<zoo::LabelOutput> Execute(int model) const override;

  const data::Oracle& oracle() const { return *oracle_; }
  int item() const { return item_; }

 private:
  const data::Oracle* oracle_;
  int item_;
};

/// A scheduling decision point: everything a picker may inspect.
struct PickContext {
  const ExecutionContext* exec = nullptr;
  const LabelingState* state = nullptr;
  /// Models already started (a superset of state->model_executed(): models
  /// in flight count as started but not yet executed).
  const std::vector<bool>* started = nullptr;
  double now = 0.0;
  /// Absolute deadline (infinity when unconstrained).
  double deadline = std::numeric_limits<double>::infinity();
  double mem_free = std::numeric_limits<double>::infinity();
  /// True when no model is currently running.
  bool idle = true;

  double remaining_time() const { return deadline - now; }
};

/// Returns the next model to start *now*, or -1 to start nothing (the kernel
/// then advances to the next finish event, or stops once nothing is
/// running). Serial strategies return a model only when `idle`.
using ModelPicker = std::function<int(const PickContext&)>;

/// Optional kernel hooks.
struct KernelHooks {
  /// Called after each finish event is applied to the labeling state.
  /// Returning true stops the kernel from starting further models; work
  /// already in flight still drains (its outputs count, exactly as in
  /// Algorithm 2's final window).
  std::function<bool(const ExecutionRecord&, const LabelingState&)>
      on_executed;
};

/// The shared scheduling kernel: a single event-driven loop under which the
/// greedy, Algorithm-1 and Algorithm-2 schedules (and the offline runners)
/// are just different pickers. Per iteration it (a) asks the picker for
/// models to start at the current instant, (b) advances to the earliest
/// finish event, applies its outputs and accounts value/reward, and (c)
/// stops when nothing runs and nothing new starts. Memory is charged at
/// start and released at finish; executions past the deadline are never
/// started but started work always drains.
ScheduleResult RunScheduleKernel(const ExecutionContext& exec,
                                 const ScheduleConstraints& constraints,
                                 const ModelPicker& picker,
                                 const KernelHooks& hooks = {});

/// Q-value greedy picker (§V intro): when idle, starts the unexecuted model
/// with maximal predicted Q; stops once END has the highest value.
ModelPicker MakeGreedyPicker(ModelValuePredictor* predictor);

/// Algorithm 1 picker: when idle, starts the feasible model maximizing
/// SchedulingProfit(Q) / planned time.
ModelPicker MakeDeadlinePicker(ModelValuePredictor* predictor);

/// Algorithm 2 picker: when idle, anchors the window with the feasible model
/// maximizing Q / (time * mem); otherwise fills remaining memory with the
/// feasible model maximizing Q / mem. Fills are bounded by the global
/// deadline rather than the literal anchor window (see DESIGN note in the
/// implementation: the literal filter degenerates to serial execution when
/// the value-density anchor is a short model).
ModelPicker MakeDeadlineMemoryPicker(ModelValuePredictor* predictor);

/// Random feasible packing baseline (§VI-G): reshuffles the model order at
/// every event round and packs feasible models in that order.
ModelPicker MakeRandomPackingPicker(uint64_t seed);

}  // namespace ams::core

#endif  // AMS_CORE_SCHEDULE_KERNEL_H_
