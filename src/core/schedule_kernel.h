#ifndef AMS_CORE_SCHEDULE_KERNEL_H_
#define AMS_CORE_SCHEDULE_KERNEL_H_

#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "core/decision_plane.h"
#include "core/labeling_state.h"
#include "core/predictor.h"
#include "data/oracle.h"
#include "zoo/latent_scene.h"
#include "zoo/model_zoo.h"

namespace ams::core {

/// Per-item resource constraints (Eq. 2's "constraints on S").
struct ScheduleConstraints {
  /// Deadline per item in seconds (Algorithm 1 / 2). Infinity = unlimited.
  double time_budget_s = std::numeric_limits<double>::infinity();
  /// GPU memory budget in MB for parallel execution (Algorithm 2 only).
  double memory_budget_mb = std::numeric_limits<double>::infinity();

  /// Crashes with a clear message on NaN or negative budgets (a negative or
  /// NaN budget would otherwise silently schedule nothing).
  void Validate() const;
};

/// One scheduled model execution.
struct ExecutionRecord {
  int model_id = -1;
  double start_s = 0.0;
  double finish_s = 0.0;
  /// Raw model output (labels + confidences, incl. low-confidence ones).
  /// Empty in lean kernel mode (outputs are never materialized there).
  std::vector<zoo::LabelOutput> outputs;
  /// O'(m, d): newly emitted valuable labels.
  std::vector<zoo::LabelOutput> fresh;
  /// Reward of Eq. (3) for this execution; 0 in lean kernel mode.
  double reward = 0.0;
};

/// Outcome of scheduling one item.
struct ScheduleResult {
  /// Executions in finish order (serial schedules: also start order).
  /// Empty in lean kernel mode; use num_executions for the count.
  std::vector<ExecutionRecord> executions;
  /// Number of executions, maintained in both kernel modes.
  int num_executions = 0;
  /// Serial total time (Algorithm 1) or parallel makespan (Algorithm 2).
  double makespan_s = 0.0;
  /// f(S, d): sum over recalled labels of the best confidence obtained.
  double value = 0.0;
  /// Union of valuable labels with their best confidences. Empty in lean
  /// kernel mode (the map is never exported there).
  std::vector<zoo::LabelOutput> recalled_labels;
  /// Peak simultaneous memory use, for asserting the constraint held.
  double peak_mem_mb = 0.0;
};

/// Execution substrate of the scheduling kernel: where model outputs and
/// execution times come from. Two implementations cover the repo's two
/// information patterns — live inference on a scene (production) and replay
/// of stored oracle outputs (offline evaluation, §VI-A) — plus a memoizing
/// decorator for contexts that are replayed repeatedly.
class ExecutionContext {
 public:
  virtual ~ExecutionContext() = default;

  virtual const zoo::ModelZoo& zoo() const = 0;
  int num_models() const { return zoo().num_models(); }
  const zoo::ModelSpec& model(int m) const { return zoo().model(m); }

  /// Planning-time estimate used by feasibility checks ("does m still fit
  /// the budget"). Live scheduling only knows the spec's mean time; replay
  /// knows the realized draw.
  virtual double PlannedTime(int model) const = 0;

  /// Realized duration charged when the model actually runs.
  virtual double RealizedTime(int model) const = 0;

  /// Runs the model and returns its raw outputs by reference: replay serves
  /// the oracle's stored vectors directly (no copies), live contexts return
  /// an internal buffer that stays valid until the next Execute call.
  virtual const std::vector<zoo::LabelOutput>& Execute(int model) const = 0;

  /// True when every Execute reference stays valid for the context's whole
  /// lifetime (backing storage, not a recycled buffer). Memoizing wrappers
  /// keep such references instead of copying.
  virtual bool StableOutputs() const { return false; }
};

/// Live inference on one scene via ModelZoo::Execute. Never peeks at outputs
/// of models it did not select, matching a production deployment.
class LiveExecutionContext : public ExecutionContext {
 public:
  LiveExecutionContext(const zoo::ModelZoo* zoo, const zoo::LatentScene* scene);

  const zoo::ModelZoo& zoo() const override { return *zoo_; }
  double PlannedTime(int model) const override;
  double RealizedTime(int model) const override;
  const std::vector<zoo::LabelOutput>& Execute(int model) const override;

 private:
  const zoo::ModelZoo* zoo_;
  const zoo::LatentScene* scene_;
  /// Holds the last Execute result so outputs can be served by reference
  /// (the kernel consumes them before the next execution).
  mutable std::vector<zoo::LabelOutput> last_outputs_;
};

/// Replay of one stored item: outputs and times come from the oracle, so
/// planned and realized times coincide and Execute serves the oracle's
/// stored vectors by reference without any intermediate copy.
class ReplayExecutionContext : public ExecutionContext {
 public:
  ReplayExecutionContext(const data::Oracle* oracle, int item);

  const zoo::ModelZoo& zoo() const override { return oracle_->zoo(); }
  double PlannedTime(int model) const override;
  double RealizedTime(int model) const override;
  const std::vector<zoo::LabelOutput>& Execute(int model) const override;
  /// Outputs are the oracle's own storage.
  bool StableOutputs() const override { return true; }

  const data::Oracle& oracle() const { return *oracle_; }
  int item() const { return item_; }

 private:
  const data::Oracle* oracle_;
  int item_;
};

/// Memoizing decorator over any ExecutionContext: Execute(model) and
/// RealizedTime(model) hit the inner context once per model and are served
/// by reference thereafter. Two uses: (a) one item replayed under many
/// budgets (the deadline/memory sweeps) executes each model's data exactly
/// once across all runs, and (b) a stochastic live context becomes a fixed
/// replay of its first realization, so repeated runs are comparable.
///
/// Thread-safe: entries are filled under a mutex into preallocated slots, so
/// concurrent kernel runs (LabelingService workers) may share one instance.
class CachedReplayExecutionContext : public ExecutionContext {
 public:
  /// Borrows `inner`; it must outlive this context.
  explicit CachedReplayExecutionContext(const ExecutionContext* inner);
  /// Owns `inner`.
  explicit CachedReplayExecutionContext(std::unique_ptr<ExecutionContext> inner);
  /// Convenience: caches a replay of one stored item.
  CachedReplayExecutionContext(const data::Oracle* oracle, int item);

  const zoo::ModelZoo& zoo() const override { return inner_->zoo(); }
  double PlannedTime(int model) const override;
  double RealizedTime(int model) const override;
  const std::vector<zoo::LabelOutput>& Execute(int model) const override;
  /// Memoized entries live as long as this context, so nesting works.
  bool StableOutputs() const override { return true; }

  const ExecutionContext& inner() const { return *inner_; }

 private:
  /// Shared tail of the constructors: entry slots + planned-time preload.
  void Init();
  /// Filled once under the mutex, then served lock-free: `ready` is the
  /// release/acquire gate for the payload, so steady-state reads (every
  /// replay after the first) cost one atomic load.
  struct Entry {
    std::atomic<bool> time_ready{false};
    std::atomic<bool> outputs_ready{false};
    double realized_time = 0.0;
    /// Points at the inner context's storage when it is stable (replay);
    /// otherwise `owned_outputs` holds a copy made once.
    const std::vector<zoo::LabelOutput>* outputs = nullptr;
    std::vector<zoo::LabelOutput> owned_outputs;
  };

  Entry& EntryFor(int model) const;

  std::unique_ptr<ExecutionContext> owned_inner_;
  const ExecutionContext* inner_;
  std::vector<double> planned_times_;  // preloaded per model
  mutable std::mutex mu_;
  mutable std::unique_ptr<Entry[]> entries_;  // preallocated: stable addresses
  int num_entries_ = 0;
};

/// A scheduling decision point: everything a picker may inspect.
struct PickContext {
  const ExecutionContext* exec = nullptr;
  const LabelingState* state = nullptr;
  /// Models already started (a superset of state->model_executed(): models
  /// in flight count as started but not yet executed).
  const std::vector<bool>* started = nullptr;
  double now = 0.0;
  /// Absolute deadline (infinity when unconstrained).
  double deadline = std::numeric_limits<double>::infinity();
  double mem_free = std::numeric_limits<double>::infinity();
  /// True when no model is currently running.
  bool idle = true;

  double remaining_time() const { return deadline - now; }
};

/// Returns the next model to start *now*, or -1 to start nothing (the kernel
/// then advances to the next finish event, or stops once nothing is
/// running). Serial strategies return a model only when `idle`.
using ModelPicker = std::function<int(const PickContext&)>;

/// Optional kernel hooks.
struct KernelHooks {
  /// Called after each finish event is applied to the labeling state.
  /// Returning true stops the kernel from starting further models; work
  /// already in flight still drains (its outputs count, exactly as in
  /// Algorithm 2's final window).
  ///
  /// In lean kernel mode the record passed here is a reused scratch whose
  /// `outputs` are empty and `reward` is 0; `model_id`, `start_s`,
  /// `finish_s` and `fresh` are always valid.
  std::function<bool(const ExecutionRecord&, const LabelingState&)>
      on_executed;
};

/// How much the kernel materializes per run.
enum class KernelMode {
  /// Full ScheduleResult: per-execution records (with output copies) and
  /// the recalled-label union. The default.
  kFull,
  /// Lean: accumulates only makespan, value, execution count and peak
  /// memory — no per-execution output copies, no recalled-label map. The
  /// offline recall-only paths (deadline/memory sweeps) run here.
  kLean,
};

/// The shared scheduling kernel in resumable form: construct it, then Step()
/// until false. Each Step (a) asks the picker for models to start at the
/// current instant, (b) advances to the earliest finish event, applies its
/// outputs and accounts value/reward, and (c) reports completion once
/// nothing runs and nothing new starts. Memory is charged at start and
/// released at finish; executions past the deadline are never started but
/// started work always drains.
///
/// Single-shot callers use the RunScheduleKernel wrapper below; co-scheduling
/// drivers (LabelingService workers batching Q-predictions across items)
/// interleave Step() calls of many kernels and refresh a shared
/// DecisionPlane between event rounds.
class ScheduleKernel {
 public:
  ScheduleKernel(const ExecutionContext* exec,
                 const ScheduleConstraints& constraints, ModelPicker picker,
                 KernelHooks hooks = {}, KernelMode mode = KernelMode::kFull);

  /// Advances past the next finish event. Returns false once the schedule is
  /// complete (and on every later call).
  bool Step();

  bool done() const { return done_; }
  /// True while the picker may still be consulted (not stopped, not done) —
  /// i.e. the next Step will open with a pick round.
  bool picking() const { return !done_ && !stopped_; }
  const LabelingState& state() const { return state_; }

  /// The accumulated result; call once done() (checked).
  ScheduleResult TakeResult();

 private:
  void StartModels();

  const ExecutionContext* exec_;
  ScheduleConstraints constraints_;
  ModelPicker picker_;
  KernelHooks hooks_;
  KernelMode mode_;

  struct Running {
    int model_id;
    double start_s;
    double finish_s;
    double mem_mb;
  };

  LabelingState state_;
  ScheduleResult result_;
  std::vector<Running> running_;
  std::vector<bool> started_;
  double mem_free_;
  double mem_used_ = 0.0;
  double now_ = 0.0;
  bool stopped_ = false;
  bool done_ = false;
  bool result_taken_ = false;
  // Lean-mode scratch reused across events (no per-event allocations).
  ExecutionRecord scratch_record_;
  // Best-confidence union of valuable labels, for f(S, d): flat table
  // indexed by label id (0 = never credited; valuable confidences are
  // strictly positive) plus the first-touch list of credited labels. Both
  // are sized at construction, so value accounting never allocates
  // per event — part of the zero-allocation steady-state tick contract.
  std::vector<double> best_conf_;
  std::vector<int> touched_labels_;
};

/// Runs one schedule start to finish (the single-shot form of the kernel).
ScheduleResult RunScheduleKernel(const ExecutionContext& exec,
                                 const ScheduleConstraints& constraints,
                                 const ModelPicker& picker,
                                 const KernelHooks& hooks = {},
                                 KernelMode mode = KernelMode::kFull);

/// Q-value greedy picker (§V intro): when idle, starts the unexecuted model
/// with maximal predicted Q; stops once END has the highest value. The Slot
/// overloads draw Q values through a shared DecisionPlane (so a co-scheduling
/// driver can batch them); the predictor overloads keep a private plane.
ModelPicker MakeGreedyPicker(ModelValuePredictor* predictor);
ModelPicker MakeGreedyPicker(DecisionPlane::Slot* slot);

/// Algorithm 1 picker: when idle, starts the feasible model maximizing
/// SchedulingProfit(Q) / planned time.
ModelPicker MakeDeadlinePicker(ModelValuePredictor* predictor);
ModelPicker MakeDeadlinePicker(DecisionPlane::Slot* slot);

/// Algorithm 2 picker: when idle, anchors the window with the feasible model
/// maximizing Q / (time * mem); otherwise fills remaining memory with the
/// feasible model maximizing Q / mem. Fills are bounded by the global
/// deadline rather than the literal anchor window (see DESIGN note in the
/// implementation: the literal filter degenerates to serial execution when
/// the value-density anchor is a short model).
ModelPicker MakeDeadlineMemoryPicker(ModelValuePredictor* predictor);
ModelPicker MakeDeadlineMemoryPicker(DecisionPlane::Slot* slot);

/// Random feasible packing baseline (§VI-G): reshuffles the model order at
/// every event round and packs feasible models in that order.
ModelPicker MakeRandomPackingPicker(uint64_t seed);

}  // namespace ams::core

#endif  // AMS_CORE_SCHEDULE_KERNEL_H_
