#include "core/reward.h"

#include <cmath>

#include "util/check.h"

namespace ams::core {

double ModelReward(const std::vector<zoo::LabelOutput>& fresh_outputs,
                   double theta, RewardShaping shaping) {
  AMS_DCHECK(theta > 0.0);
  if (fresh_outputs.empty()) return kNoOutputPunishment;
  double sum = 0.0;
  for (const auto& out : fresh_outputs) sum += out.confidence;
  switch (shaping) {
    case RewardShaping::kLogSum:
      return std::log(theta * sum + 1.0);
    case RewardShaping::kAverage:
      return theta * sum / static_cast<double>(fresh_outputs.size());
    case RewardShaping::kRawSum:
      return theta * sum;
  }
  AMS_CHECK(false, "invalid shaping");
  return 0.0;
}

}  // namespace ams::core
