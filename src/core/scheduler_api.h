#ifndef AMS_CORE_SCHEDULER_API_H_
#define AMS_CORE_SCHEDULER_API_H_

#include "core/predictor.h"
#include "core/reward.h"
#include "core/schedule_kernel.h"
#include "zoo/latent_scene.h"
#include "zoo/model_zoo.h"

namespace ams::core {

/// Predictor-driven scheduling on live data (§III-B): given a model zoo and
/// a trained value predictor, adaptively schedules model executions on one
/// item at a time under resource constraints.
///
/// All three entry points are thin instances of the shared scheduling kernel
/// (core/schedule_kernel.h) with the corresponding picker. The class
/// executes models for real (via ModelZoo::Execute); it never peeks at
/// outputs of models it did not select, so its information pattern matches a
/// production deployment. For session-based scheduling over batches and
/// streams — and for driving src/sched policies online — use
/// core::LabelingService instead; this facade remains as the minimal
/// single-item surface it wraps.
class AdaptiveModelScheduler {
 public:
  /// `zoo` and `predictor` must outlive the scheduler.
  AdaptiveModelScheduler(const zoo::ModelZoo* zoo,
                         ModelValuePredictor* predictor);

  /// Q-value greedy scheduling without resource constraints (§V intro):
  /// repeatedly executes the model with maximal predicted value and stops
  /// when END has the highest value (or everything ran).
  ScheduleResult LabelItemGreedy(const zoo::LatentScene& scene);

  /// Algorithm 1: serial scheduling under a deadline. Each iteration picks
  /// the feasible model maximizing Q(m, d) / m.time.
  ScheduleResult LabelItem(const zoo::LatentScene& scene,
                           const ScheduleConstraints& constraints);

  /// Algorithm 2: parallel scheduling under deadline + memory constraints.
  /// Event-driven: when no model is running the anchor model maximizing
  /// Q / (time * mem) is started; the remaining memory is filled with models
  /// maximizing Q / mem; outputs apply at finish events.
  ScheduleResult LabelItemParallel(const zoo::LatentScene& scene,
                                   const ScheduleConstraints& constraints);

  const zoo::ModelZoo& zoo() const { return *zoo_; }

 private:
  const zoo::ModelZoo* zoo_;
  ModelValuePredictor* predictor_;
};

}  // namespace ams::core

#endif  // AMS_CORE_SCHEDULER_API_H_
