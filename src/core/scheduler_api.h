#ifndef AMS_CORE_SCHEDULER_API_H_
#define AMS_CORE_SCHEDULER_API_H_

#include <limits>
#include <vector>

#include "core/labeling_state.h"
#include "core/predictor.h"
#include "core/reward.h"
#include "zoo/latent_scene.h"
#include "zoo/model_zoo.h"

namespace ams::core {

/// Per-item resource constraints (Eq. 2's "constraints on S").
struct ScheduleConstraints {
  /// Deadline per item in seconds (Algorithm 1 / 2). Infinity = unlimited.
  double time_budget_s = std::numeric_limits<double>::infinity();
  /// GPU memory budget in MB for parallel execution (Algorithm 2 only).
  double memory_budget_mb = std::numeric_limits<double>::infinity();
};

/// One scheduled model execution.
struct ExecutionRecord {
  int model_id = -1;
  double start_s = 0.0;
  double finish_s = 0.0;
  /// Raw model output (labels + confidences, incl. low-confidence ones).
  std::vector<zoo::LabelOutput> outputs;
  /// O'(m, d): newly emitted valuable labels.
  std::vector<zoo::LabelOutput> fresh;
  /// Reward of Eq. (3) for this execution.
  double reward = 0.0;
};

/// Outcome of scheduling one item.
struct ScheduleResult {
  std::vector<ExecutionRecord> executions;
  /// Serial total time (Algorithm 1) or parallel makespan (Algorithm 2).
  double makespan_s = 0.0;
  /// f(S, d): sum over recalled labels of the best confidence obtained.
  double value = 0.0;
  /// Union of valuable labels with their best confidences.
  std::vector<zoo::LabelOutput> recalled_labels;
};

/// The public facade of the framework (§III-B): given a model zoo and a
/// trained value predictor, adaptively schedules model executions on live
/// data items under resource constraints.
///
/// This class executes models for real (via ModelZoo::Execute); it never
/// peeks at outputs of models it did not select, so its information pattern
/// matches a production deployment. For offline evaluation against stored
/// ground truth use the policies in src/sched instead.
class AdaptiveModelScheduler {
 public:
  /// `zoo` and `predictor` must outlive the scheduler.
  AdaptiveModelScheduler(const zoo::ModelZoo* zoo,
                         ModelValuePredictor* predictor);

  /// Q-value greedy scheduling without resource constraints (§V intro):
  /// repeatedly executes the model with maximal predicted value and stops
  /// when END has the highest value (or everything ran).
  ScheduleResult LabelItemGreedy(const zoo::LatentScene& scene);

  /// Algorithm 1: serial scheduling under a deadline. Each iteration picks
  /// the feasible model maximizing Q(m, d) / m.time.
  ScheduleResult LabelItem(const zoo::LatentScene& scene,
                           const ScheduleConstraints& constraints);

  /// Algorithm 2: parallel scheduling under deadline + memory constraints.
  /// Event-driven: when no model is running the anchor model maximizing
  /// Q / (time * mem) is started and its finish time becomes the temporary
  /// deadline; the remaining memory is filled with models maximizing
  /// Q / mem that finish within the window; outputs apply at finish events.
  ScheduleResult LabelItemParallel(const zoo::LatentScene& scene,
                                   const ScheduleConstraints& constraints);

  const zoo::ModelZoo& zoo() const { return *zoo_; }

 private:
  const zoo::ModelZoo* zoo_;
  ModelValuePredictor* predictor_;
};

}  // namespace ams::core

#endif  // AMS_CORE_SCHEDULER_API_H_
