#include "core/labeling_service.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/value.h"
#include "sched/policy_adapter.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ams::core {

namespace {

// A policy bundled with the predictor clone it decides from, so each worker
// of a WithPolicy(name, {predictor}) session owns a private copy of a
// stateful predictor (same idiom as cloning an rl::Agent per eval thread).
class PolicyWithPredictor : public sched::SchedulingPolicy {
 public:
  PolicyWithPredictor(std::unique_ptr<ModelValuePredictor> predictor,
                      std::unique_ptr<sched::SchedulingPolicy> inner)
      : predictor_(std::move(predictor)), inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  void BeginItem(const sched::ItemContext& ctx) override {
    inner_->BeginItem(ctx);
  }
  int NextModel(const LabelingState& state, double remaining_time) override {
    return inner_->NextModel(state, remaining_time);
  }
  void OnExecuted(int model,
                  const std::vector<zoo::LabelOutput>& fresh) override {
    inner_->OnExecuted(model, fresh);
  }

  sched::SchedulingPolicy* inner() const { return inner_.get(); }

 private:
  std::unique_ptr<ModelValuePredictor> predictor_;
  std::unique_ptr<sched::SchedulingPolicy> inner_;
};

}  // namespace

/// Memoized replay contexts keyed by stored item id. Shared by every worker
/// of the session: the contexts themselves are thread-safe, the map is
/// guarded here.
struct LabelingService::ReplayCacheState {
  std::mutex mu;
  std::unordered_map<int, std::unique_ptr<CachedReplayExecutionContext>> items;

  const CachedReplayExecutionContext* GetOrCreate(const data::Oracle* oracle,
                                                  int item) {
    std::lock_guard<std::mutex> lock(mu);
    std::unique_ptr<CachedReplayExecutionContext>& slot = items[item];
    if (slot == nullptr) {
      slot = std::make_unique<CachedReplayExecutionContext>(oracle, item);
    }
    return slot.get();
  }
};

/// Per-worker predictor clones, created on first use and reused for the
/// session's lifetime. Cloning an rl::Agent round-trips every weight
/// through the checkpoint format (milliseconds); paying that once per
/// worker instead of once per batch is what lets short batches scale.
/// Every acquisition re-syncs the clone from the live source (raw weight
/// copy, or a fresh clone when the predictor cannot sync), so a predictor
/// mutated between batches — a training loop, a checkpoint reload — is
/// always picked up, exactly as if the clone were rebuilt per batch.
struct LabelingService::PredictorPool {
  std::mutex mu;
  std::vector<std::unique_ptr<ModelValuePredictor>> clones;  // by worker
  /// Frozen int8 snapshots (quantized sessions), by worker. Never re-synced:
  /// a quantized clone cannot track later weight changes (see
  /// ModelValuePredictor::CloneQuantized), so it is built once and kept.
  std::vector<std::unique_ptr<ModelValuePredictor>> quantized;
  /// Calibration rows shared by every worker's quantized build, sampled once
  /// at first quantized acquisition (guarded by `mu`).
  std::vector<std::vector<float>> calibration;
  bool calibration_ready = false;

  /// Returns the worker's up-to-date clone, or nullptr when the predictor
  /// does not support cloning (the caller then shares the original, which
  /// must be thread-safe — same contract as before the pool existed).
  ModelValuePredictor* GetOrCreate(int worker,
                                   ModelValuePredictor* predictor) {
    std::lock_guard<std::mutex> lock(mu);
    if (static_cast<size_t>(worker) >= clones.size()) {
      clones.resize(static_cast<size_t>(worker) + 1);
    }
    std::unique_ptr<ModelValuePredictor>& slot =
        clones[static_cast<size_t>(worker)];
    if (slot == nullptr || !slot->SyncWeightsFrom(predictor)) {
      slot = predictor->ClonePredictor();
    }
    return slot.get();
  }

  /// Returns the worker's frozen quantized clone, building it (and the
  /// shared calibration sample, via `sample_rows`) on first use. Returns
  /// nullptr when the predictor has no quantized form; the caller then
  /// falls back to the fp32 clone path.
  ModelValuePredictor* GetOrCreateQuantized(
      int worker, ModelValuePredictor* predictor,
      const std::function<std::vector<std::vector<float>>()>& sample_rows) {
    std::lock_guard<std::mutex> lock(mu);
    if (static_cast<size_t>(worker) >= quantized.size()) {
      quantized.resize(static_cast<size_t>(worker) + 1);
    }
    std::unique_ptr<ModelValuePredictor>& slot =
        quantized[static_cast<size_t>(worker)];
    if (slot == nullptr) {
      if (!calibration_ready) {
        calibration = sample_rows();
        calibration_ready = true;
      }
      slot = predictor->CloneQuantized(calibration);
    }
    return slot.get();
  }
};

/// One item's prepared kernel run. Heap-allocated and never moved, so the
/// hook lambdas can capture raw pointers to `acc` and `adapter`.
struct LabelingService::ItemRun {
  std::unique_ptr<ExecutionContext> owned_exec;
  const ExecutionContext* exec = nullptr;
  std::optional<ValueAccumulator> acc;
  std::unique_ptr<sched::PolicyAdapter> adapter;
  ModelPicker picker;
  KernelHooks hooks;
  /// True when the recall target was met before any execution (e.g. an item
  /// with no valuable labels): nothing to schedule, `outcome` is final.
  bool skipped = false;
  LabelOutcome outcome;
};

LabelingService::LabelingService(Config config) : config_(std::move(config)) {
  if (config_.cache_replay) {
    replay_cache_ = std::make_shared<ReplayCacheState>();
  }
  if (config_.predictor != nullptr) {
    predictor_pool_ = std::make_shared<PredictorPool>();
  }
}

LabelingService::DecisionState LabelingService::MakeDecisionState(
    bool clone_predictor, int worker_index) const {
  DecisionState state;
  if (config_.policy_factory != nullptr) {
    state.policy = config_.policy_factory(worker_index);
    AMS_CHECK(state.policy != nullptr, "policy factory returned null");
  }
  if (config_.predictor != nullptr) {
    ModelValuePredictor* clone = nullptr;
    if (clone_predictor) {
      if (config_.quantized_inference) {
        // Frozen int8 snapshot per worker; nullptr (no quantized form)
        // falls through to the fp32 clone path below.
        clone = predictor_pool_->GetOrCreateQuantized(
            worker_index, config_.predictor,
            [this] { return BuildCalibrationRows(); });
      }
      // Clones live in the session pool, created once per worker and reused
      // across batches.
      if (clone == nullptr) {
        clone = predictor_pool_->GetOrCreate(worker_index, config_.predictor);
      }
    }
    // Predictors that cannot clone are shared; they must be thread-safe
    // (documented on ModelValuePredictor::ClonePredictor).
    state.predictor = clone != nullptr ? clone : config_.predictor;
  }
  return state;
}

std::unique_ptr<LabelingService::ItemRun> LabelingService::PrepareItem(
    const WorkItem& item, DecisionState* state, uint64_t stream_id,
    DecisionPlane::Slot* slot) const {
  const bool stored = item.item >= 0;
  AMS_CHECK(stored || item.scene != nullptr,
            "WorkItem needs a scene or a stored item id");
  AMS_CHECK(!stored || config_.oracle != nullptr,
            "stored items need an oracle-backed session (WithOracle)");

  auto run = std::make_unique<ItemRun>();
  if (stored) {
    if (replay_cache_ != nullptr) {
      run->exec = replay_cache_->GetOrCreate(config_.oracle, item.item);
    } else {
      run->owned_exec =
          std::make_unique<ReplayExecutionContext>(config_.oracle, item.item);
      run->exec = run->owned_exec.get();
    }
    run->acc.emplace(config_.oracle, item.item);
  } else {
    run->owned_exec =
        std::make_unique<LiveExecutionContext>(config_.zoo, item.scene);
    run->exec = run->owned_exec.get();
  }

  switch (config_.mode) {
    case ExecutionMode::kGreedy:
      run->picker = slot != nullptr ? MakeGreedyPicker(slot)
                                    : MakeGreedyPicker(state->predictor);
      break;
    case ExecutionMode::kSerial:
      if (state->policy != nullptr) {
        sched::ItemContext ctx;
        ctx.oracle = stored ? config_.oracle : nullptr;
        ctx.zoo = config_.zoo;
        ctx.item = item.item;
        ctx.chunk_id = item.chunk_id;
        run->adapter =
            std::make_unique<sched::PolicyAdapter>(state->policy.get(), ctx);
        run->picker = run->adapter->Picker();
      } else {
        run->picker = slot != nullptr ? MakeDeadlinePicker(slot)
                                      : MakeDeadlinePicker(state->predictor);
      }
      break;
    case ExecutionMode::kParallel:
      run->picker = slot != nullptr
                        ? MakeDeadlineMemoryPicker(slot)
                        : MakeDeadlineMemoryPicker(state->predictor);
      break;
    case ExecutionMode::kParallelRandom:
      run->picker = MakeRandomPackingPicker(
          util::HashCombine(config_.seed, 0x9A7Au + stream_id));
      break;
  }

  // Items whose target is met before any execution (e.g. no valuable labels
  // at all) schedule nothing.
  ValueAccumulator* acc = run->acc.has_value() ? &*run->acc : nullptr;
  const double target = config_.recall_target;
  if (acc != nullptr && RecallTargetReached(*acc, target)) {
    run->outcome.recall = acc->Recall();
    run->skipped = true;
    return run;
  }
  sched::PolicyAdapter* adapter = run->adapter.get();
  if (acc != nullptr || adapter != nullptr) {
    run->hooks.on_executed = [acc, adapter, target](
                                 const ExecutionRecord& record,
                                 const LabelingState&) {
      if (acc != nullptr) acc->AddModel(record.model_id);
      if (adapter != nullptr) adapter->NotifyExecuted(record);
      return acc != nullptr && RecallTargetReached(*acc, target);
    };
  }
  return run;
}

std::vector<std::vector<float>> LabelingService::BuildCalibrationRows() const {
  // Enough rows to pin every layer's activation range without making the
  // calibration forwards noticeable; beyond this, extra rows barely move
  // the observed maxima.
  constexpr size_t kMaxRows = 64;
  const int num_labels = config_.zoo->labels().total_labels();
  std::vector<std::vector<float>> rows;
  rows.reserve(kMaxRows);
  // Every item starts all-zero, so the zero state is always observed.
  rows.emplace_back(static_cast<size_t>(num_labels), 0.0f);
  util::Rng rng(util::HashCombine(config_.seed, 0xCA11Bu));
  if (config_.oracle != nullptr && config_.oracle->num_items() > 0) {
    // Replay stored outputs on sampled items, snapshotting the label state
    // after each model that produced something fresh — exactly the
    // progressive states a serving forward pass sees.
    const data::Oracle& oracle = *config_.oracle;
    const int num_models = oracle.num_models();
    for (int attempt = 0; attempt < 256 && rows.size() < kMaxRows;
         ++attempt) {
      const int item = rng.UniformInt(0, oracle.num_items() - 1);
      LabelingState state(num_labels, num_models);
      for (int m = 0; m < num_models && rows.size() < kMaxRows; ++m) {
        const int before = state.num_labels_set();
        state.ApplyInto(m, oracle.Output(item, m), nullptr);
        if (state.num_labels_set() != before) rows.push_back(state.Features());
      }
    }
    return rows;
  }
  // No oracle: seeded random binary rows across a density sweep, so the
  // scales cover both sparse early states and denser late ones.
  const int max_density = std::max(1, num_labels / 8);
  while (rows.size() < kMaxRows) {
    const int density = rng.UniformInt(1, max_density);
    std::vector<float> row(static_cast<size_t>(num_labels), 0.0f);
    for (const int i : rng.SampleWithoutReplacement(num_labels, density)) {
      row[static_cast<size_t>(i)] = 1.0f;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

LabelOutcome LabelingService::RunOne(const WorkItem& item,
                                     DecisionState* state,
                                     uint64_t stream_id) const {
  std::unique_ptr<ItemRun> run =
      PrepareItem(item, state, stream_id, /*slot=*/nullptr);
  if (run->skipped) return std::move(run->outcome);
  run->outcome.schedule = RunScheduleKernel(
      *run->exec, config_.constraints, run->picker, run->hooks,
      config_.kernel_mode);
  if (run->acc.has_value()) run->outcome.recall = run->acc->Recall();
  return std::move(run->outcome);
}

void LabelingService::RunCoScheduled(
    const std::vector<const WorkItem*>& items,
    const std::vector<uint64_t>& stream_ids,
    const std::vector<LabelOutcome*>& outcomes, DecisionState* state) const {
  const size_t n = items.size();
  AMS_CHECK(stream_ids.size() == n && outcomes.size() == n);
  AMS_CHECK(state->predictor != nullptr,
            "co-scheduling batches predictor Q-queries");

  // Items co-scheduled at once. Large enough to amortize a forward pass,
  // small enough that the wave's kernel state (features, accumulators,
  // running sets) stays cache-resident — co-scheduling a worker's entire
  // block measurably thrashes once hundreds of items cycle per round.
  constexpr size_t kWaveSize = 16;

  DecisionPlane plane(state->predictor);
  // Worker-local scratch for the plane's batch buffers, rewound every event
  // round — rounds re-use one warm block instead of growing member vectors.
  util::Arena arena;
  plane.AttachArena(&arena);
  std::vector<DecisionPlane::SlotView> views;
  for (size_t wave_begin = 0; wave_begin < n; wave_begin += kWaveSize) {
    const size_t wave = std::min(kWaveSize, n - wave_begin);
    std::vector<std::unique_ptr<ItemRun>> runs(wave);
    std::vector<DecisionPlane::Slot*> slots(wave);
    std::vector<std::unique_ptr<ScheduleKernel>> kernels(wave);
    for (size_t i = 0; i < wave; ++i) {
      const size_t k = wave_begin + i;
      slots[i] = plane.NewSlot();
      runs[i] = PrepareItem(*items[k], state, stream_ids[k], slots[i]);
      if (runs[i]->skipped) {
        *outcomes[k] = std::move(runs[i]->outcome);
        continue;
      }
      kernels[i] = std::make_unique<ScheduleKernel>(
          runs[i]->exec, config_.constraints, runs[i]->picker, runs[i]->hooks,
          config_.kernel_mode);
    }

    // Event-round lockstep: refresh every picking kernel's Q-slot with ONE
    // batched forward pass, then advance each live kernel past one finish
    // event. Items are independent, so the interleaving cannot change any
    // outcome — only how many forward passes the round costs.
    for (bool any_live = true; any_live;) {
      views.clear();
      for (size_t i = 0; i < wave; ++i) {
        if (kernels[i] != nullptr && kernels[i]->picking()) {
          views.push_back({slots[i], &kernels[i]->state()});
        }
      }
      arena.Reset();
      plane.Prefetch(views);
      any_live = false;
      for (size_t i = 0; i < wave; ++i) {
        if (kernels[i] == nullptr) continue;
        if (kernels[i]->Step()) {
          any_live = true;
        } else {
          runs[i]->outcome.schedule = kernels[i]->TakeResult();
          if (runs[i]->acc.has_value()) {
            runs[i]->outcome.recall = runs[i]->acc->Recall();
          }
          *outcomes[wave_begin + i] = std::move(runs[i]->outcome);
          kernels[i].reset();
        }
      }
    }
  }
}

LabelingService::ItemStepper::ItemStepper(const LabelingService* session,
                                          int worker_index)
    : session_(session),
      state_(session->MakeDecisionState(/*clone_predictor=*/true,
                                        worker_index)) {
  if (state_.predictor != nullptr) {
    // Steppers live for the serving runtime's lifetime over a frozen
    // predictor clone, the regime the plane's row memo exists for: at
    // steady state most decision points are served without a forward pass.
    plane_ = std::make_unique<DecisionPlane>(state_.predictor,
                                             /*memoize_rows=*/true);
    plane_->AttachArena(&arena_);
  }
}

LabelingService::ItemStepper::~ItemStepper() = default;

void LabelingService::ItemStepper::AttachTracer(const obs::Tracer* tracer,
                                                obs::TraceBuffer* lane,
                                                const util::Clock* clock) {
  tracer_ = tracer;
  trace_lane_ = lane;
  trace_clock_ = clock;
  if (state_.predictor != nullptr) {
    const ModelValuePredictor::BackendInfo info =
        state_.predictor->backend_info();
    backend_tier_ = info.simd_tier;
    backend_int8_ = info.int8;
  }
}

void LabelingService::ItemStepper::AttachForwardExecutor(
    ForwardRoundExecutor* executor) {
  forward_executor_ = executor;
}

uint64_t LabelingService::ItemStepper::Admit(const WorkItem& item,
                                             uint64_t stream_id) {
  const uint64_t ticket = next_ticket_++;
  DecisionPlane::Slot* slot = plane_ != nullptr ? plane_->NewSlot() : nullptr;
  std::unique_ptr<ItemRun> run =
      session_->PrepareItem(item, &state_, stream_id, slot);
  if (run->skipped) {
    if (slot != nullptr) plane_->ReleaseSlot(slot);
    Completion done;
    done.ticket = ticket;
    done.outcome = std::move(run->outcome);
    pending_.push_back(std::move(done));
    return ticket;
  }
  InFlight flight;
  flight.ticket = ticket;
  flight.kernel = std::make_unique<ScheduleKernel>(
      run->exec, session_->config_.constraints, run->picker, run->hooks,
      session_->config_.kernel_mode);
  flight.run = std::move(run);
  flight.slot = slot;
  inflight_.push_back(std::move(flight));
  return ticket;
}

void LabelingService::ItemStepper::Tick(std::vector<Completion>* completed) {
  // The tick span skips empty ticks (nothing resident, nothing pending) so
  // an idle polling loop cannot flood the trace ring. Everything the span
  // does — clock reads, stores into a preallocated ring slot — is
  // allocation-free, preserving the zero-heap steady-state tick.
  const int resident_at_entry = resident();
  obs::ScopedSpan tick_span(resident_at_entry > 0 ? tracer_ : nullptr,
                            trace_lane_, trace_clock_, obs::Phase::kTick);
  tick_stats_ = TickStats();
  const size_t completed_at_entry = completed->size();

  // Rewind the tick scratch arena: after the first few ticks sized it, this
  // is a pointer reset and the whole tick runs without touching the heap.
  arena_.Reset();
  for (Completion& done : pending_) completed->push_back(std::move(done));
  pending_.clear();
  if (inflight_.empty()) {
    // A barrier-style forward executor must still see this participant once
    // per tick (other participants' rounds rendezvous on it), so run an
    // empty round before returning.
    if (forward_executor_ != nullptr && plane_ != nullptr) {
      views_.clear();
      forward_executor_->ExecuteRound(plane_.get(), views_);
    }
    FinishTickSpan(&tick_span, resident_at_entry,
                   static_cast<int>(completed->size() - completed_at_entry));
    return;
  }

  // One deduplicated batched forward pass refreshes every resident item
  // still consulting the picker; items mid-drain (stopped, or nothing new
  // to start) skip the Q refresh entirely. With a forward executor attached
  // the round is handed off instead — gathered, coalesced with other
  // participants, and committed back — with bitwise-identical rows.
  if (plane_ != nullptr) {
    views_.clear();
    for (const InFlight& flight : inflight_) {
      if (flight.kernel->picking()) {
        views_.push_back({flight.slot, &flight.kernel->state()});
      }
    }
    if (forward_executor_ != nullptr) {
      if (tick_span.active() && !views_.empty()) {
        // The forward span covers the whole handed-off round, including the
        // rendezvous wait for co-participants — that wait IS this stepper's
        // forward phase under coalescing.
        obs::ScopedSpan forward_span(tracer_, trace_lane_, trace_clock_,
                                     obs::Phase::kForward);
        const ForwardRoundExecutor::RoundStats round =
            forward_executor_->ExecuteRound(plane_.get(), views_);
        forward_span.set_args(round.gathered, round.memo_hits, backend_tier_,
                              backend_int8_ ? 1 : 0);
        tick_stats_.forward_s = forward_span.Close();
        tick_stats_.forward_rows = round.gathered;
        tick_stats_.memo_hits = round.memo_hits;
        tick_stats_.cluster_rows = round.cluster_rows;
      } else {
        forward_executor_->ExecuteRound(plane_.get(), views_);
      }
    } else if (tick_span.active() && !views_.empty()) {
      obs::ScopedSpan forward_span(tracer_, trace_lane_, trace_clock_,
                                   obs::Phase::kForward);
      const long rows_before = plane_->batched_rows();
      const long memo_before = plane_->memo_hits();
      plane_->Prefetch(views_);
      const int rows = static_cast<int>(plane_->batched_rows() - rows_before);
      const int hits = static_cast<int>(plane_->memo_hits() - memo_before);
      forward_span.set_args(rows, hits, backend_tier_, backend_int8_ ? 1 : 0);
      tick_stats_.forward_s = forward_span.Close();
      tick_stats_.forward_rows = rows;
      tick_stats_.memo_hits = hits;
    } else {
      plane_->Prefetch(views_);
    }
  }

  // Advance every kernel past one finish event, compacting the resident set
  // in place as items complete.
  size_t live = 0;
  for (size_t i = 0; i < inflight_.size(); ++i) {
    InFlight& flight = inflight_[i];
    if (flight.kernel->Step()) {
      if (live != i) inflight_[live] = std::move(flight);
      ++live;
      continue;
    }
    Completion done;
    done.ticket = flight.ticket;
    done.outcome.schedule = flight.kernel->TakeResult();
    if (flight.run->acc.has_value()) {
      done.outcome.recall = flight.run->acc->Recall();
    }
    completed->push_back(std::move(done));
    if (flight.slot != nullptr) plane_->ReleaseSlot(flight.slot);
  }
  inflight_.resize(live);
  FinishTickSpan(&tick_span, resident_at_entry,
                 static_cast<int>(completed->size() - completed_at_entry));
}

void LabelingService::ItemStepper::FinishTickSpan(obs::ScopedSpan* span,
                                                  int resident_at_entry,
                                                  int completed_this_tick) {
  if (!span->active()) return;
  span->set_args(resident_at_entry, completed_this_tick,
                 static_cast<int32_t>(arena_.used()));
  tick_stats_.traced = true;
  tick_stats_.resident = resident_at_entry;
  tick_stats_.completed = completed_this_tick;
  tick_stats_.arena_used = arena_.used();
  tick_stats_.tick_s = span->Close();
}

int LabelingService::ItemStepper::resident() const {
  return static_cast<int>(inflight_.size() + pending_.size());
}

std::unique_ptr<LabelingService::ItemStepper> LabelingService::NewItemStepper(
    int worker_index) {
  AMS_CHECK(config_.policy_factory == nullptr,
            "item steppers multiplex items event-by-event; stateful policies "
            "need sequential submission (Submit/SubmitBatch)");
  AMS_CHECK(worker_index >= 0);
  return std::unique_ptr<ItemStepper>(new ItemStepper(this, worker_index));
}

LabelOutcome LabelingService::Submit(const WorkItem& item) {
  if (!session_state_ready_) {
    session_state_ =
        MakeDecisionState(/*clone_predictor=*/false, /*worker_index=*/0);
    session_state_ready_ = true;
  }
  const uint64_t stream_id = item.item >= 0
                                 ? static_cast<uint64_t>(item.item)
                                 : live_sequence_++;
  return RunOne(item, &session_state_, stream_id);
}

WorkEstimate LabelingService::EstimateWork(const WorkItem& item) const {
  WorkEstimate estimate;
  if (item.item >= 0 && config_.oracle != nullptr) {
    // Stored item: the oracle IS the item's profile — the paper's stored
    // full-execution outputs. Full value recall is achievable; its
    // predicted cost is the summed execution time of the models with
    // valuable output.
    const data::Oracle& oracle = *config_.oracle;
    if (item.item >= oracle.num_items()) return estimate;
    if (oracle.TrueTotalValue(item.item) <= 0.0) return estimate;
    estimate.expected_value = 1.0;
    estimate.expected_cost_s = oracle.ValuableTime(item.item);
    return estimate;
  }
  if (item.scene == nullptr) return estimate;
  // Live scene: predict per task whether its models are likely to emit
  // valuable labels from the scene structure, then charge the mean
  // execution time of every model of the active tasks (the scheduler does
  // not know a priori which tier suffices).
  const zoo::LatentScene& scene = *item.scene;
  bool task_active[zoo::kNumTasks] = {};
  task_active[static_cast<int>(zoo::TaskKind::kObjectDetection)] =
      !scene.objects.empty();
  task_active[static_cast<int>(zoo::TaskKind::kPlaceClassification)] =
      scene.scene_clarity >= 0.5;
  const bool face = scene.has_visible_face();
  task_active[static_cast<int>(zoo::TaskKind::kFaceDetection)] = face;
  task_active[static_cast<int>(zoo::TaskKind::kFaceLandmark)] = face;
  task_active[static_cast<int>(zoo::TaskKind::kEmotionClassification)] = face;
  task_active[static_cast<int>(zoo::TaskKind::kGenderClassification)] = face;
  task_active[static_cast<int>(zoo::TaskKind::kPoseEstimation)] =
      scene.has_person();
  task_active[static_cast<int>(zoo::TaskKind::kHandLandmark)] =
      scene.has_visible_hands();
  task_active[static_cast<int>(zoo::TaskKind::kActionClassification)] =
      scene.action_id >= 0 && scene.action_clarity >= 0.5;
  task_active[static_cast<int>(zoo::TaskKind::kDogClassification)] =
      scene.has_dog && scene.dog_visibility >= 0.5;
  double cost_s = 0.0;
  bool any_active = false;
  for (const zoo::ModelSpec& spec : config_.zoo->models()) {
    if (!task_active[static_cast<int>(spec.task)]) continue;
    any_active = true;
    cost_s += spec.time_s;
  }
  if (!any_active) return estimate;
  estimate.expected_value = 1.0;
  estimate.expected_cost_s = cost_s;
  return estimate;
}

sched::SchedulingPolicy* LabelingService::session_policy() {
  if (!session_state_ready_) {
    session_state_ =
        MakeDecisionState(/*clone_predictor=*/false, /*worker_index=*/0);
    session_state_ready_ = true;
  }
  sched::SchedulingPolicy* policy = session_state_.policy.get();
  // Unwrap the predictor-owning shim so callers can downcast to the
  // concrete policy type for diagnostics.
  if (auto* wrapped = dynamic_cast<PolicyWithPredictor*>(policy)) {
    return wrapped->inner();
  }
  return policy;
}

std::vector<LabelOutcome> LabelingService::SubmitBatch(
    const std::vector<WorkItem>& items) {
  const int n = static_cast<int>(items.size());
  std::vector<LabelOutcome> results(static_cast<size_t>(n));
  if (n == 0) return results;

  // Live items take session-level stream ids so consecutive batches don't
  // replay identical random-packing sequences per batch position.
  const uint64_t live_base = live_sequence_;
  live_sequence_ += static_cast<uint64_t>(n);

  // Group items by chunk — a chunk's items stay with one worker, in arrival
  // order, so chunk-adaptive policies see the same history as a sequential
  // run even when chunks interleave. Chunkless items are singleton groups.
  std::vector<std::vector<int>> groups;  // item indices, arrival order
  std::map<int, size_t> chunk_group;     // chunk id -> index into groups
  for (int i = 0; i < n; ++i) {
    const int chunk = items[static_cast<size_t>(i)].chunk_id;
    if (chunk >= 0) {
      const auto [it, inserted] = chunk_group.emplace(chunk, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(i);
    } else {
      groups.push_back({i});
    }
  }

  // Contiguous blocks of groups, balanced by item count. The partition
  // depends only on (items, workers), never on thread timing.
  const int num_blocks =
      std::min(config_.workers, static_cast<int>(groups.size()));
  std::vector<std::pair<size_t, size_t>> blocks;  // group index ranges
  size_t g = 0;
  int assigned_items = 0;
  for (int b = 0; b < num_blocks && g < groups.size(); ++b) {
    const int remaining_items = n - assigned_items;
    const int remaining_blocks = num_blocks - b;
    const int quota =
        (remaining_items + remaining_blocks - 1) / remaining_blocks;
    const size_t start = g;
    int count = 0;
    while (g < groups.size() && (count < quota || b == num_blocks - 1)) {
      count += static_cast<int>(groups[g].size());
      ++g;
    }
    assigned_items += count;
    blocks.push_back({start, g});
  }
  // The last block's quota condition is bypassed, so every group is
  // assigned.
  AMS_CHECK(g == groups.size());

  const auto run_block = [&](const std::pair<size_t, size_t>& block,
                             int worker_index) {
    DecisionState state =
        MakeDecisionState(/*clone_predictor=*/true, worker_index);
    // Policies are stateful across a worker's items (chunk-adaptive
    // history), so only predictor-driven sessions may co-schedule.
    const bool coalesce = config_.batch_predictions &&
                          state.predictor != nullptr &&
                          state.policy == nullptr;
    std::vector<const WorkItem*> block_items;
    std::vector<uint64_t> stream_ids;
    std::vector<LabelOutcome*> outcomes;
    for (size_t gi = block.first; gi < block.second; ++gi) {
      for (int k : groups[gi]) {
        const WorkItem& item = items[static_cast<size_t>(k)];
        const uint64_t stream_id =
            item.item >= 0 ? static_cast<uint64_t>(item.item)
                           : live_base + static_cast<uint64_t>(k);
        if (coalesce) {
          block_items.push_back(&item);
          stream_ids.push_back(stream_id);
          outcomes.push_back(&results[static_cast<size_t>(k)]);
        } else {
          results[static_cast<size_t>(k)] = RunOne(item, &state, stream_id);
        }
      }
    }
    if (coalesce) RunCoScheduled(block_items, stream_ids, outcomes, &state);
  };

  if (blocks.size() == 1) {
    run_block(blocks[0], 0);
    return results;
  }
  util::ThreadPool pool(static_cast<int>(blocks.size()));
  std::vector<std::future<void>> futures;
  futures.reserve(blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) {
    const std::pair<size_t, size_t> block = blocks[b];
    const int worker_index = static_cast<int>(b);
    futures.push_back(pool.Submit(
        [&run_block, block, worker_index] { run_block(block, worker_index); }));
  }
  for (auto& future : futures) future.get();
  return results;
}

int LabelingService::Run(data::DataStream* stream, const Sink& sink) {
  AMS_CHECK(stream != nullptr);
  AMS_CHECK(config_.oracle != nullptr,
            "streaming sessions replay stored items; configure WithOracle");
  std::vector<WorkItem> items;
  items.reserve(static_cast<size_t>(stream->size()));
  while (!stream->Done()) {
    const int item = stream->Next();
    items.push_back(WorkItem::Stored(item, stream->current_chunk()));
  }
  const std::vector<LabelOutcome> outcomes = SubmitBatch(items);
  if (sink != nullptr) {
    for (size_t i = 0; i < items.size(); ++i) sink(items[i], outcomes[i]);
  }
  return static_cast<int>(items.size());
}

LabelingServiceBuilder::LabelingServiceBuilder(const zoo::ModelZoo* zoo) {
  AMS_CHECK(zoo != nullptr);
  config_.zoo = zoo;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithOracle(
    const data::Oracle* oracle) {
  AMS_CHECK(oracle != nullptr);
  config_.oracle = oracle;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithPredictor(
    ModelValuePredictor* predictor) {
  AMS_CHECK(predictor != nullptr);
  config_.predictor = predictor;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithPolicy(
    const std::string& name, sched::PolicyOptions options) {
  pending_policy_name_ = name;
  pending_policy_options_ = std::move(options);
  has_pending_policy_ = true;
  config_.policy_factory = nullptr;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithPolicyFactory(
    LabelingService::PolicyFactory factory) {
  AMS_CHECK(factory != nullptr);
  config_.policy_factory = [factory = std::move(factory)](int) {
    return factory();
  };
  config_.policy_name.clear();
  has_pending_policy_ = false;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithConstraints(
    const ScheduleConstraints& c) {
  config_.constraints = c;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithMode(ExecutionMode mode) {
  config_.mode = mode;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithKernelMode(
    KernelMode mode) {
  config_.kernel_mode = mode;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithBatchedPrediction(
    bool batch) {
  config_.batch_predictions = batch;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithQuantizedInference(
    bool quantized) {
  config_.quantized_inference = quantized;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithReplayCache(bool cache) {
  config_.cache_replay = cache;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithWorkers(int workers) {
  config_.workers = workers;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithSeed(uint64_t seed) {
  config_.seed = seed;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithRecallTarget(
    double target) {
  config_.recall_target = target;
  return *this;
}

LabelingService LabelingServiceBuilder::Build() const {
  LabelingService::Config config = config_;
  if (has_pending_policy_) {
    sched::PolicyRegistry& registry = sched::PolicyRegistry::Global();
    AMS_CHECK(registry.Contains(pending_policy_name_),
              "unknown policy '" + pending_policy_name_ +
                  "'; known: " + registry.JoinedNames());
    config.policy_name = pending_policy_name_;
    const std::string name = pending_policy_name_;
    const sched::PolicyOptions options = pending_policy_options_;
    config.policy_factory =
        [name, options](int worker) -> std::unique_ptr<sched::SchedulingPolicy> {
      // Each worker's policy gets a private predictor clone when the
      // predictor supports it (non-clonable predictors are shared and must
      // be thread-safe), and a worker-decorrelated seed so seeded baselines
      // don't replay identical random sequences on every worker.
      sched::PolicyOptions per_worker = options;
      // Worker 0 keeps the caller's seed so sequential sessions reproduce
      // direct policy construction; only extra workers decorrelate.
      if (worker != 0) {
        per_worker.seed = util::HashCombine(options.seed,
                                            static_cast<uint64_t>(worker));
      }
      std::unique_ptr<ModelValuePredictor> clone =
          options.predictor != nullptr ? options.predictor->ClonePredictor()
                                       : nullptr;
      if (clone != nullptr) per_worker.predictor = clone.get();
      std::unique_ptr<sched::SchedulingPolicy> policy =
          sched::PolicyRegistry::Global().Create(name, per_worker);
      if (clone == nullptr) return policy;
      return std::make_unique<PolicyWithPredictor>(std::move(clone),
                                                   std::move(policy));
    };
  }
  config.constraints.Validate();

  const bool has_policy = config.policy_factory != nullptr;
  AMS_CHECK(!(config.predictor != nullptr && has_policy),
            "configure a predictor or a policy, not both");
  switch (config.mode) {
    case ExecutionMode::kGreedy:
      // Greedy is the unconstrained schedule (§V intro); a budget the
      // picker would never check must not be silently accepted.
      AMS_CHECK(std::isinf(config.constraints.time_budget_s) &&
                    std::isinf(config.constraints.memory_budget_mb),
                "greedy mode is unconstrained; use kSerial or kParallel "
                "for budgeted scheduling");
      [[fallthrough]];
    case ExecutionMode::kParallel:
      AMS_CHECK(config.predictor != nullptr,
                "greedy/parallel modes are predictor-driven (WithPredictor); "
                "policies schedule serially");
      break;
    case ExecutionMode::kSerial:
      AMS_CHECK(config.predictor != nullptr || has_policy,
                "serial mode needs a predictor (Algorithm 1) or a policy");
      // Algorithm 1 and the serial policies are time-only; a memory budget
      // they would never check must not be silently accepted.
      AMS_CHECK(std::isinf(config.constraints.memory_budget_mb),
                "serial scheduling is time-only; use kParallel for memory "
                "budgets");
      break;
    case ExecutionMode::kParallelRandom:
      AMS_CHECK(config.predictor == nullptr && !has_policy,
                "random packing takes neither a predictor nor a policy");
      break;
  }
  if (config.predictor != nullptr) {
    AMS_CHECK(config.predictor->num_actions() == config.zoo->num_models() + 1,
              "predictor action space must be num_models + END");
  }
  if (config.oracle != nullptr) {
    AMS_CHECK(&config.oracle->zoo() == config.zoo,
              "oracle must wrap the session's zoo");
  }
  if (config.recall_target >= 0.0) {
    AMS_CHECK(config.oracle != nullptr,
              "recall targets need stored ground truth (WithOracle)");
  }
  if (config.batch_predictions) {
    AMS_CHECK(config.predictor != nullptr,
              "batched prediction coalesces predictor Q-queries; configure "
              "WithPredictor");
  }
  if (config.cache_replay) {
    AMS_CHECK(config.oracle != nullptr,
              "replay caching memoizes stored outputs; configure WithOracle");
  }
  if (config.quantized_inference) {
    AMS_CHECK(config.predictor != nullptr,
              "quantized inference snapshots the predictor's Q-net; "
              "configure WithPredictor");
  }
  if (config.workers <= 0) {
    config.workers = util::ThreadPool::DefaultThreads();
  }
  return LabelingService(std::move(config));
}

}  // namespace ams::core
