#include "core/labeling_service.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <optional>
#include <utility>

#include "core/value.h"
#include "sched/policy_adapter.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ams::core {

namespace {

// A policy bundled with the predictor clone it decides from, so each worker
// of a WithPolicy(name, {predictor}) session owns a private copy of a
// stateful predictor (same idiom as cloning an rl::Agent per eval thread).
class PolicyWithPredictor : public sched::SchedulingPolicy {
 public:
  PolicyWithPredictor(std::unique_ptr<ModelValuePredictor> predictor,
                      std::unique_ptr<sched::SchedulingPolicy> inner)
      : predictor_(std::move(predictor)), inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  void BeginItem(const sched::ItemContext& ctx) override {
    inner_->BeginItem(ctx);
  }
  int NextModel(const LabelingState& state, double remaining_time) override {
    return inner_->NextModel(state, remaining_time);
  }
  void OnExecuted(int model,
                  const std::vector<zoo::LabelOutput>& fresh) override {
    inner_->OnExecuted(model, fresh);
  }

  sched::SchedulingPolicy* inner() const { return inner_.get(); }

 private:
  std::unique_ptr<ModelValuePredictor> predictor_;
  std::unique_ptr<sched::SchedulingPolicy> inner_;
};

}  // namespace

LabelingService::DecisionState LabelingService::MakeDecisionState(
    bool clone_predictor, int worker_index) const {
  DecisionState state;
  if (config_.policy_factory != nullptr) {
    state.policy = config_.policy_factory(worker_index);
    AMS_CHECK(state.policy != nullptr, "policy factory returned null");
  }
  if (config_.predictor != nullptr) {
    if (clone_predictor) {
      state.predictor_clone = config_.predictor->ClonePredictor();
    }
    // Predictors that cannot clone are shared; they must be thread-safe
    // (documented on ModelValuePredictor::ClonePredictor).
    state.predictor = state.predictor_clone != nullptr
                          ? state.predictor_clone.get()
                          : config_.predictor;
  }
  return state;
}

LabelOutcome LabelingService::RunOne(const WorkItem& item,
                                     DecisionState* state,
                                     uint64_t stream_id) const {
  const bool stored = item.item >= 0;
  AMS_CHECK(stored || item.scene != nullptr,
            "WorkItem needs a scene or a stored item id");
  AMS_CHECK(!stored || config_.oracle != nullptr,
            "stored items need an oracle-backed session (WithOracle)");

  std::unique_ptr<ExecutionContext> exec;
  if (stored) {
    exec = std::make_unique<ReplayExecutionContext>(config_.oracle, item.item);
  } else {
    exec = std::make_unique<LiveExecutionContext>(config_.zoo, item.scene);
  }
  std::optional<ValueAccumulator> acc;
  if (stored) acc.emplace(config_.oracle, item.item);

  std::unique_ptr<sched::PolicyAdapter> adapter;
  ModelPicker picker;
  switch (config_.mode) {
    case ExecutionMode::kGreedy:
      picker = MakeGreedyPicker(state->predictor);
      break;
    case ExecutionMode::kSerial:
      if (state->policy != nullptr) {
        sched::ItemContext ctx;
        ctx.oracle = stored ? config_.oracle : nullptr;
        ctx.zoo = config_.zoo;
        ctx.item = item.item;
        ctx.chunk_id = item.chunk_id;
        adapter =
            std::make_unique<sched::PolicyAdapter>(state->policy.get(), ctx);
        picker = adapter->Picker();
      } else {
        picker = MakeDeadlinePicker(state->predictor);
      }
      break;
    case ExecutionMode::kParallel:
      picker = MakeDeadlineMemoryPicker(state->predictor);
      break;
    case ExecutionMode::kParallelRandom:
      picker = MakeRandomPackingPicker(
          util::HashCombine(config_.seed, 0x9A7Au + stream_id));
      break;
  }

  const auto target_reached = [&] {
    return acc.has_value() &&
           RecallTargetReached(*acc, config_.recall_target);
  };
  LabelOutcome outcome;
  // Items whose target is met before any execution (e.g. no valuable labels
  // at all) schedule nothing.
  if (target_reached()) {
    outcome.recall = acc->Recall();
    return outcome;
  }
  KernelHooks hooks;
  if (acc.has_value() || adapter != nullptr) {
    hooks.on_executed = [&](const ExecutionRecord& record,
                            const LabelingState&) {
      if (acc.has_value()) acc->AddModel(record.model_id);
      if (adapter != nullptr) adapter->NotifyExecuted(record);
      return target_reached();
    };
  }
  outcome.schedule =
      RunScheduleKernel(*exec, config_.constraints, picker, hooks);
  if (acc.has_value()) outcome.recall = acc->Recall();
  return outcome;
}

LabelOutcome LabelingService::Submit(const WorkItem& item) {
  if (!session_state_ready_) {
    session_state_ =
        MakeDecisionState(/*clone_predictor=*/false, /*worker_index=*/0);
    session_state_ready_ = true;
  }
  const uint64_t stream_id = item.item >= 0
                                 ? static_cast<uint64_t>(item.item)
                                 : live_sequence_++;
  return RunOne(item, &session_state_, stream_id);
}

sched::SchedulingPolicy* LabelingService::session_policy() {
  if (!session_state_ready_) {
    session_state_ =
        MakeDecisionState(/*clone_predictor=*/false, /*worker_index=*/0);
    session_state_ready_ = true;
  }
  sched::SchedulingPolicy* policy = session_state_.policy.get();
  // Unwrap the predictor-owning shim so callers can downcast to the
  // concrete policy type for diagnostics.
  if (auto* wrapped = dynamic_cast<PolicyWithPredictor*>(policy)) {
    return wrapped->inner();
  }
  return policy;
}

std::vector<LabelOutcome> LabelingService::SubmitBatch(
    const std::vector<WorkItem>& items) {
  const int n = static_cast<int>(items.size());
  std::vector<LabelOutcome> results(static_cast<size_t>(n));
  if (n == 0) return results;

  // Live items take session-level stream ids so consecutive batches don't
  // replay identical random-packing sequences per batch position.
  const uint64_t live_base = live_sequence_;
  live_sequence_ += static_cast<uint64_t>(n);

  // Group items by chunk — a chunk's items stay with one worker, in arrival
  // order, so chunk-adaptive policies see the same history as a sequential
  // run even when chunks interleave. Chunkless items are singleton groups.
  std::vector<std::vector<int>> groups;  // item indices, arrival order
  std::map<int, size_t> chunk_group;     // chunk id -> index into groups
  for (int i = 0; i < n; ++i) {
    const int chunk = items[static_cast<size_t>(i)].chunk_id;
    if (chunk >= 0) {
      const auto [it, inserted] = chunk_group.emplace(chunk, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(i);
    } else {
      groups.push_back({i});
    }
  }

  // Contiguous blocks of groups, balanced by item count. The partition
  // depends only on (items, workers), never on thread timing.
  const int num_blocks =
      std::min(config_.workers, static_cast<int>(groups.size()));
  std::vector<std::pair<size_t, size_t>> blocks;  // group index ranges
  size_t g = 0;
  int assigned_items = 0;
  for (int b = 0; b < num_blocks && g < groups.size(); ++b) {
    const int remaining_items = n - assigned_items;
    const int remaining_blocks = num_blocks - b;
    const int quota =
        (remaining_items + remaining_blocks - 1) / remaining_blocks;
    const size_t start = g;
    int count = 0;
    while (g < groups.size() && (count < quota || b == num_blocks - 1)) {
      count += static_cast<int>(groups[g].size());
      ++g;
    }
    assigned_items += count;
    blocks.push_back({start, g});
  }
  // The last block's quota condition is bypassed, so every group is
  // assigned.
  AMS_CHECK(g == groups.size());

  const auto run_block = [&](const std::pair<size_t, size_t>& block,
                             int worker_index) {
    DecisionState state =
        MakeDecisionState(/*clone_predictor=*/true, worker_index);
    for (size_t gi = block.first; gi < block.second; ++gi) {
      for (int k : groups[gi]) {
        const WorkItem& item = items[static_cast<size_t>(k)];
        const uint64_t stream_id =
            item.item >= 0 ? static_cast<uint64_t>(item.item)
                           : live_base + static_cast<uint64_t>(k);
        results[static_cast<size_t>(k)] = RunOne(item, &state, stream_id);
      }
    }
  };

  if (blocks.size() == 1) {
    run_block(blocks[0], 0);
    return results;
  }
  util::ThreadPool pool(static_cast<int>(blocks.size()));
  std::vector<std::future<void>> futures;
  futures.reserve(blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) {
    const std::pair<size_t, size_t> block = blocks[b];
    const int worker_index = static_cast<int>(b);
    futures.push_back(pool.Submit(
        [&run_block, block, worker_index] { run_block(block, worker_index); }));
  }
  for (auto& future : futures) future.get();
  return results;
}

int LabelingService::Run(data::DataStream* stream, const Sink& sink) {
  AMS_CHECK(stream != nullptr);
  AMS_CHECK(config_.oracle != nullptr,
            "streaming sessions replay stored items; configure WithOracle");
  std::vector<WorkItem> items;
  items.reserve(static_cast<size_t>(stream->size()));
  while (!stream->Done()) {
    const int item = stream->Next();
    items.push_back(WorkItem::Stored(item, stream->current_chunk()));
  }
  const std::vector<LabelOutcome> outcomes = SubmitBatch(items);
  if (sink != nullptr) {
    for (size_t i = 0; i < items.size(); ++i) sink(items[i], outcomes[i]);
  }
  return static_cast<int>(items.size());
}

LabelingServiceBuilder::LabelingServiceBuilder(const zoo::ModelZoo* zoo) {
  AMS_CHECK(zoo != nullptr);
  config_.zoo = zoo;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithOracle(
    const data::Oracle* oracle) {
  AMS_CHECK(oracle != nullptr);
  config_.oracle = oracle;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithPredictor(
    ModelValuePredictor* predictor) {
  AMS_CHECK(predictor != nullptr);
  config_.predictor = predictor;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithPolicy(
    const std::string& name, sched::PolicyOptions options) {
  pending_policy_name_ = name;
  pending_policy_options_ = std::move(options);
  has_pending_policy_ = true;
  config_.policy_factory = nullptr;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithPolicyFactory(
    LabelingService::PolicyFactory factory) {
  AMS_CHECK(factory != nullptr);
  config_.policy_factory = [factory = std::move(factory)](int) {
    return factory();
  };
  config_.policy_name.clear();
  has_pending_policy_ = false;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithConstraints(
    const ScheduleConstraints& c) {
  config_.constraints = c;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithMode(ExecutionMode mode) {
  config_.mode = mode;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithWorkers(int workers) {
  config_.workers = workers;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithSeed(uint64_t seed) {
  config_.seed = seed;
  return *this;
}

LabelingServiceBuilder& LabelingServiceBuilder::WithRecallTarget(
    double target) {
  config_.recall_target = target;
  return *this;
}

LabelingService LabelingServiceBuilder::Build() const {
  LabelingService::Config config = config_;
  if (has_pending_policy_) {
    sched::PolicyRegistry& registry = sched::PolicyRegistry::Global();
    AMS_CHECK(registry.Contains(pending_policy_name_),
              "unknown policy '" + pending_policy_name_ +
                  "'; known: " + registry.JoinedNames());
    config.policy_name = pending_policy_name_;
    const std::string name = pending_policy_name_;
    const sched::PolicyOptions options = pending_policy_options_;
    config.policy_factory =
        [name, options](int worker) -> std::unique_ptr<sched::SchedulingPolicy> {
      // Each worker's policy gets a private predictor clone when the
      // predictor supports it (non-clonable predictors are shared and must
      // be thread-safe), and a worker-decorrelated seed so seeded baselines
      // don't replay identical random sequences on every worker.
      sched::PolicyOptions per_worker = options;
      // Worker 0 keeps the caller's seed so sequential sessions reproduce
      // direct policy construction; only extra workers decorrelate.
      if (worker != 0) {
        per_worker.seed = util::HashCombine(options.seed,
                                            static_cast<uint64_t>(worker));
      }
      std::unique_ptr<ModelValuePredictor> clone =
          options.predictor != nullptr ? options.predictor->ClonePredictor()
                                       : nullptr;
      if (clone != nullptr) per_worker.predictor = clone.get();
      std::unique_ptr<sched::SchedulingPolicy> policy =
          sched::PolicyRegistry::Global().Create(name, per_worker);
      if (clone == nullptr) return policy;
      return std::make_unique<PolicyWithPredictor>(std::move(clone),
                                                   std::move(policy));
    };
  }
  config.constraints.Validate();

  const bool has_policy = config.policy_factory != nullptr;
  AMS_CHECK(!(config.predictor != nullptr && has_policy),
            "configure a predictor or a policy, not both");
  switch (config.mode) {
    case ExecutionMode::kGreedy:
      // Greedy is the unconstrained schedule (§V intro); a budget the
      // picker would never check must not be silently accepted.
      AMS_CHECK(std::isinf(config.constraints.time_budget_s) &&
                    std::isinf(config.constraints.memory_budget_mb),
                "greedy mode is unconstrained; use kSerial or kParallel "
                "for budgeted scheduling");
      [[fallthrough]];
    case ExecutionMode::kParallel:
      AMS_CHECK(config.predictor != nullptr,
                "greedy/parallel modes are predictor-driven (WithPredictor); "
                "policies schedule serially");
      break;
    case ExecutionMode::kSerial:
      AMS_CHECK(config.predictor != nullptr || has_policy,
                "serial mode needs a predictor (Algorithm 1) or a policy");
      // Algorithm 1 and the serial policies are time-only; a memory budget
      // they would never check must not be silently accepted.
      AMS_CHECK(std::isinf(config.constraints.memory_budget_mb),
                "serial scheduling is time-only; use kParallel for memory "
                "budgets");
      break;
    case ExecutionMode::kParallelRandom:
      AMS_CHECK(config.predictor == nullptr && !has_policy,
                "random packing takes neither a predictor nor a policy");
      break;
  }
  if (config.predictor != nullptr) {
    AMS_CHECK(config.predictor->num_actions() == config.zoo->num_models() + 1,
              "predictor action space must be num_models + END");
  }
  if (config.oracle != nullptr) {
    AMS_CHECK(&config.oracle->zoo() == config.zoo,
              "oracle must wrap the session's zoo");
  }
  if (config.recall_target >= 0.0) {
    AMS_CHECK(config.oracle != nullptr,
              "recall targets need stored ground truth (WithOracle)");
  }
  if (config.workers <= 0) {
    config.workers = util::ThreadPool::DefaultThreads();
  }
  return LabelingService(std::move(config));
}

}  // namespace ams::core
