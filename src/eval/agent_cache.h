#ifndef AMS_EVAL_AGENT_CACHE_H_
#define AMS_EVAL_AGENT_CACHE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/oracle.h"
#include "rl/agent.h"
#include "rl/trainer.h"

namespace ams::eval {

/// Request to train (or load from cache) one agent.
struct AgentRequest {
  /// Cache key component; include everything that affects the result
  /// (dataset name, scheme, theta, ...).
  std::string key;
  const data::Oracle* oracle = nullptr;
  rl::TrainConfig config;
};

/// Disk-backed cache of trained agents so every benchmark binary can be run
/// standalone: the first run trains (in parallel across requests), later
/// runs load checkpoints in milliseconds.
class AgentCache {
 public:
  /// `dir` is created if missing (default: artifacts/agents under the
  /// current working directory).
  explicit AgentCache(std::string dir = "artifacts/agents");

  /// Returns the cached agent for `request.key`, training and persisting it
  /// on a miss.
  std::unique_ptr<rl::Agent> GetOrTrain(const AgentRequest& request);

  /// Resolves a batch of requests, training all misses concurrently (one
  /// thread each, bounded by hardware concurrency). Result order matches
  /// request order.
  std::vector<std::unique_ptr<rl::Agent>> GetOrTrainAll(
      const std::vector<AgentRequest>& requests);

  std::string PathForKey(const std::string& key) const;

 private:
  std::string dir_;
};

}  // namespace ams::eval

#endif  // AMS_EVAL_AGENT_CACHE_H_
