#include "eval/recall_curve.h"

#include <atomic>

#include "sched/serial_runner.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ams::eval {

std::vector<double> DefaultThresholds() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

namespace {

// Runs the policy to full recall on every item and returns trajectories.
// One policy instance per worker thread.
std::vector<sched::SerialRunResult> RunAll(const PolicyFactory& factory,
                                           const data::Oracle& oracle,
                                           const std::vector<int>& items,
                                           int num_threads) {
  if (num_threads <= 0) num_threads = util::ThreadPool::DefaultThreads();
  std::vector<sched::SerialRunResult> results(items.size());
  const int n = static_cast<int>(items.size());
  const int chunk = (n + num_threads - 1) / num_threads;
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    const int lo = t * chunk;
    const int hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([&, lo, hi] {
      std::unique_ptr<sched::SchedulingPolicy> policy = factory();
      sched::SerialRunConfig config;
      config.recall_target = 1.0;
      for (int i = lo; i < hi; ++i) {
        results[static_cast<size_t>(i)] =
            sched::RunSerial(policy.get(), oracle, items[static_cast<size_t>(i)],
                             config);
      }
    });
  }
  for (auto& t : threads) t.join();
  return results;
}

}  // namespace

RecallCurve ComputeRecallCurve(const PolicyFactory& factory,
                               const data::Oracle& oracle,
                               const std::vector<int>& items,
                               const std::vector<double>& thresholds,
                               int num_threads) {
  AMS_CHECK(!items.empty());
  AMS_CHECK(!thresholds.empty());
  const std::vector<sched::SerialRunResult> runs =
      RunAll(factory, oracle, items, num_threads);

  RecallCurve curve;
  {
    std::unique_ptr<sched::SchedulingPolicy> probe = factory();
    curve.policy_name = probe->name();
  }
  curve.thresholds = thresholds;
  curve.avg_models.assign(thresholds.size(), 0.0);
  curve.avg_time_s.assign(thresholds.size(), 0.0);
  for (const auto& run : runs) {
    for (size_t k = 0; k < thresholds.size(); ++k) {
      // Cost at the first step where recall >= threshold; if the run never
      // reaches it (cannot happen for full-recall runs, but guard anyway),
      // charge the whole run.
      double models = static_cast<double>(run.steps.size());
      double time_s = run.time_used;
      for (const auto& step : run.steps) {
        if (step.recall_after >= thresholds[k] - 1e-12) {
          models = static_cast<double>(&step - run.steps.data() + 1);
          time_s = step.time_after;
          break;
        }
      }
      curve.avg_models[k] += models;
      curve.avg_time_s[k] += time_s;
    }
  }
  const double inv = 1.0 / static_cast<double>(runs.size());
  for (size_t k = 0; k < thresholds.size(); ++k) {
    curve.avg_models[k] *= inv;
    curve.avg_time_s[k] *= inv;
  }
  return curve;
}

FullRecallCosts ComputeFullRecallCosts(const PolicyFactory& factory,
                                       const data::Oracle& oracle,
                                       const std::vector<int>& items,
                                       double recall_target, int num_threads) {
  const std::vector<sched::SerialRunResult> runs =
      RunAll(factory, oracle, items, num_threads);
  FullRecallCosts costs;
  costs.time_s.reserve(runs.size());
  costs.models.reserve(runs.size());
  for (const auto& run : runs) {
    double models = static_cast<double>(run.steps.size());
    double time_s = run.time_used;
    for (const auto& step : run.steps) {
      if (step.recall_after >= recall_target - 1e-12) {
        models = static_cast<double>(&step - run.steps.data() + 1);
        time_s = step.time_after;
        break;
      }
    }
    costs.time_s.push_back(time_s);
    costs.models.push_back(models);
  }
  return costs;
}

}  // namespace ams::eval
