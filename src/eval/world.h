#ifndef AMS_EVAL_WORLD_H_
#define AMS_EVAL_WORLD_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/oracle.h"
#include "rl/trainer.h"
#include "zoo/model_zoo.h"

namespace ams::eval {

/// Scale knobs shared by the benchmark binaries. Environment variables
/// override the defaults so the whole suite scales up without recompiling:
///   AMS_ITEMS     items per dataset        (default 1500; paper: ~80k/set)
///   AMS_EPISODES  DRL training episodes    (default 1200)
///   AMS_HIDDEN    Q-network hidden width   (default 128; paper: 256)
///   AMS_EVAL_ITEMS max test items evaluated per series (default 600)
struct WorldConfig {
  int items_per_dataset = 1500;
  int train_episodes = 1200;
  int hidden_dim = 128;
  int eval_items = 600;
  uint64_t seed = 7;

  /// Reads the environment overrides.
  static WorldConfig FromEnv();
};

/// The shared experimental universe of the benches: the 30-model zoo plus
/// the five generated datasets with their oracles (stored full-execution
/// results, §VI-A).
class World {
 public:
  explicit World(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }
  const zoo::ModelZoo& zoo() const { return *zoo_; }

  int num_datasets() const { return static_cast<int>(datasets_.size()); }
  const data::Dataset& dataset(int i) const { return *datasets_[i]; }
  const data::Oracle& oracle(int i) const { return *oracles_[i]; }
  const std::string& name(int i) const { return names_[i]; }

  /// Index of a dataset by profile name ("mscoco", ...); crashes if unknown.
  int IndexOf(const std::string& name) const;

  /// Test-split items truncated to config.eval_items (deterministic prefix).
  std::vector<int> EvalItems(int dataset_index) const;

  /// Baseline train config (scheme/seed filled by caller as needed).
  rl::TrainConfig BaseTrainConfig() const;

  /// Cache key prefix including every scale knob that affects training.
  std::string CacheKey(const std::string& dataset, const std::string& scheme,
                       const std::string& extra = "") const;

 private:
  WorldConfig config_;
  std::unique_ptr<zoo::ModelZoo> zoo_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<data::Dataset>> datasets_;
  std::vector<std::unique_ptr<data::Oracle>> oracles_;
};

}  // namespace ams::eval

#endif  // AMS_EVAL_WORLD_H_
