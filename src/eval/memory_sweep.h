#ifndef AMS_EVAL_MEMORY_SWEEP_H_
#define AMS_EVAL_MEMORY_SWEEP_H_

#include <string>
#include <vector>

#include "core/predictor.h"
#include "data/oracle.h"
#include "rl/agent.h"
#include "sched/parallel_runner.h"

namespace ams::eval {

/// Average value recall under (deadline, memory) constraints (Fig. 11).
struct MemorySweep {
  std::string policy_name;
  double mem_budget_mb = 0.0;
  std::vector<double> deadlines_s;
  std::vector<double> avg_recall;
};

/// Default deadline grid of the memory experiments (0.2 .. 2.0 s).
std::vector<double> DefaultMemoryDeadlines();

/// Sweeps Algorithm 2 (when `agent` != nullptr) or the random packing
/// baseline (when nullptr) over the deadline grid at one memory budget.
/// The agent is cloned per worker thread.
MemorySweep ComputeMemorySweep(rl::Agent* agent, const data::Oracle& oracle,
                               const std::vector<int>& items,
                               double mem_budget_mb,
                               const std::vector<double>& deadlines,
                               uint64_t seed, int num_threads = 0);

/// The deadline-memory optimal* bound (§V-C) per deadline.
MemorySweep ComputeOptimalStarMemorySweep(const data::Oracle& oracle,
                                          const std::vector<int>& items,
                                          double mem_budget_mb,
                                          const std::vector<double>& deadlines,
                                          int num_threads = 0);

}  // namespace ams::eval

#endif  // AMS_EVAL_MEMORY_SWEEP_H_
