#include "eval/deadline_sweep.h"

#include <thread>

#include "core/labeling_service.h"
#include "sched/optimal_star.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ams::eval {

std::vector<double> DefaultDeadlines() {
  return {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0};
}

DeadlineSweep ComputeDeadlineSweep(const PolicyFactory& factory,
                                   const data::Oracle& oracle,
                                   const std::vector<int>& items,
                                   const std::vector<double>& deadlines,
                                   int num_threads) {
  AMS_CHECK(!items.empty() && !deadlines.empty());
  if (num_threads <= 0) num_threads = util::ThreadPool::DefaultThreads();
  DeadlineSweep sweep;
  {
    std::unique_ptr<sched::SchedulingPolicy> probe = factory();
    sweep.policy_name = probe->name();
  }
  sweep.deadlines_s = deadlines;
  sweep.avg_recall.assign(deadlines.size(), 0.0);

  std::vector<core::WorkItem> work;
  work.reserve(items.size());
  for (int item : items) work.push_back(core::WorkItem::Stored(item));

  // One session per deadline; the session fans the batch out over its
  // workers with a fresh policy instance per worker. Only recall is read
  // here, so the sessions run on the lean kernel path (no per-execution
  // output copies, no recalled-label maps).
  for (size_t d = 0; d < deadlines.size(); ++d) {
    core::ScheduleConstraints constraints;
    constraints.time_budget_s = deadlines[d];
    core::LabelingService service =
        core::LabelingServiceBuilder(&oracle.zoo())
            .WithOracle(&oracle)
            .WithMode(core::ExecutionMode::kSerial)
            .WithPolicyFactory(factory)
            .WithConstraints(constraints)
            .WithKernelMode(core::KernelMode::kLean)
            .WithWorkers(num_threads)
            .Build();
    const std::vector<core::LabelOutcome> outcomes =
        service.SubmitBatch(work);
    double sum = 0.0;
    for (const core::LabelOutcome& outcome : outcomes) sum += outcome.recall;
    sweep.avg_recall[d] = sum / static_cast<double>(items.size());
  }
  return sweep;
}

DeadlineSweep ComputeOptimalStarSweep(const data::Oracle& oracle,
                                      const std::vector<int>& items,
                                      const std::vector<double>& deadlines,
                                      int num_threads) {
  AMS_CHECK(!items.empty() && !deadlines.empty());
  if (num_threads <= 0) num_threads = util::ThreadPool::DefaultThreads();
  DeadlineSweep sweep;
  sweep.policy_name = "optimal_star";
  sweep.deadlines_s = deadlines;
  sweep.avg_recall.assign(deadlines.size(), 0.0);
  std::vector<std::vector<double>> recall_sum(
      static_cast<size_t>(num_threads),
      std::vector<double>(deadlines.size(), 0.0));
  const int n = static_cast<int>(items.size());
  const int chunk = (n + num_threads - 1) / num_threads;
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    const int lo = t * chunk;
    const int hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([&, t, lo, hi] {
      for (int i = lo; i < hi; ++i) {
        const int item = items[static_cast<size_t>(i)];
        const double total = oracle.TrueTotalValue(item);
        for (size_t d = 0; d < deadlines.size(); ++d) {
          const double value =
              sched::OptimalStarValueDeadline(oracle, item, deadlines[d]);
          recall_sum[static_cast<size_t>(t)][d] +=
              total > 0.0 ? value / total : 1.0;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& p : recall_sum) {
    for (size_t d = 0; d < deadlines.size(); ++d) sweep.avg_recall[d] += p[d];
  }
  for (double& r : sweep.avg_recall) r /= static_cast<double>(n);
  return sweep;
}

}  // namespace ams::eval
