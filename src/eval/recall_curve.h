#ifndef AMS_EVAL_RECALL_CURVE_H_
#define AMS_EVAL_RECALL_CURVE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/oracle.h"
#include "sched/policy.h"

namespace ams::eval {

/// Creates a fresh policy instance; called once per evaluation thread so
/// stateful policies never share state across threads.
using PolicyFactory = std::function<std::unique_ptr<sched::SchedulingPolicy>()>;

/// Per-threshold statistics of the "cost to reach a required value recall"
/// experiments (Figs. 4-6): for each threshold, the average number of
/// executed models and the average execution time over the item set.
struct RecallCurve {
  std::string policy_name;
  std::vector<double> thresholds;
  std::vector<double> avg_models;
  std::vector<double> avg_time_s;
};

/// Default threshold grid 0.1, 0.2, ..., 1.0.
std::vector<double> DefaultThresholds();

/// Runs `factory`'s policy on every item until full recall, then derives the
/// per-threshold averages from the trajectories. `num_threads` <= 0 uses all
/// cores.
RecallCurve ComputeRecallCurve(const PolicyFactory& factory,
                               const data::Oracle& oracle,
                               const std::vector<int>& items,
                               const std::vector<double>& thresholds,
                               int num_threads = 0);

/// Per-item cost of reaching one recall target (used for Fig 2 / Fig 8 CDFs
/// and averages): execution time and model count at first threshold hit.
struct FullRecallCosts {
  std::vector<double> time_s;   // per item
  std::vector<double> models;   // per item
};

FullRecallCosts ComputeFullRecallCosts(const PolicyFactory& factory,
                                       const data::Oracle& oracle,
                                       const std::vector<int>& items,
                                       double recall_target = 1.0,
                                       int num_threads = 0);

}  // namespace ams::eval

#endif  // AMS_EVAL_RECALL_CURVE_H_
