#include "eval/world.h"

#include <cstdlib>

#include "data/dataset_profile.h"
#include "util/check.h"

namespace ams::eval {

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

}  // namespace

WorldConfig WorldConfig::FromEnv() {
  WorldConfig config;
  config.items_per_dataset = EnvInt("AMS_ITEMS", config.items_per_dataset);
  config.train_episodes = EnvInt("AMS_EPISODES", config.train_episodes);
  config.hidden_dim = EnvInt("AMS_HIDDEN", config.hidden_dim);
  config.eval_items = EnvInt("AMS_EVAL_ITEMS", config.eval_items);
  AMS_CHECK(config.items_per_dataset > 10);
  AMS_CHECK(config.train_episodes > 0);
  AMS_CHECK(config.hidden_dim > 0);
  AMS_CHECK(config.eval_items > 0);
  return config;
}

World::World(const WorldConfig& config) : config_(config) {
  zoo_ = std::make_unique<zoo::ModelZoo>(zoo::ModelZoo::CreateDefault());
  for (const data::DatasetProfile& profile : data::DatasetProfile::AllProfiles()) {
    names_.push_back(profile.name);
    datasets_.push_back(std::make_unique<data::Dataset>(data::Dataset::Generate(
        profile, zoo_->labels(), config.items_per_dataset, config.seed)));
    oracles_.push_back(
        std::make_unique<data::Oracle>(zoo_.get(), datasets_.back().get()));
  }
}

int World::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  AMS_CHECK(false, "unknown dataset: " + name);
  return -1;
}

std::vector<int> World::EvalItems(int dataset_index) const {
  const std::vector<int>& test = dataset(dataset_index).test_indices();
  const size_t n = std::min<size_t>(test.size(),
                                    static_cast<size_t>(config_.eval_items));
  return std::vector<int>(test.begin(), test.begin() + n);
}

rl::TrainConfig World::BaseTrainConfig() const {
  rl::TrainConfig config;
  config.hidden_dim = config_.hidden_dim;
  config.episodes = config_.train_episodes;
  // Explore for roughly the first half of training (~8 steps per episode).
  config.eps_decay_steps = config_.train_episodes * 4;
  config.seed = config_.seed;
  return config;
}

std::string World::CacheKey(const std::string& dataset,
                            const std::string& scheme,
                            const std::string& extra) const {
  std::string key = dataset + "_" + scheme + "_i" +
                    std::to_string(config_.items_per_dataset) + "_e" +
                    std::to_string(config_.train_episodes) + "_h" +
                    std::to_string(config_.hidden_dim) + "_s" +
                    std::to_string(config_.seed);
  if (!extra.empty()) key += "_" + extra;
  return key;
}

}  // namespace ams::eval
