#include "eval/agent_cache.h"

#include <sys/stat.h>

#include <cstdio>
#include <thread>

#include "util/check.h"
#include "util/thread_pool.h"

namespace ams::eval {

namespace {

void EnsureDir(const std::string& path) {
  // Create each component of the path (mkdir -p).
  std::string prefix;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!prefix.empty()) {
        ::mkdir(prefix.c_str(), 0755);  // EEXIST is fine
      }
      if (i < path.size()) prefix += '/';
    } else {
      prefix += path[i];
    }
  }
}

}  // namespace

AgentCache::AgentCache(std::string dir) : dir_(std::move(dir)) {
  AMS_CHECK(!dir_.empty());
  EnsureDir(dir_);
}

std::string AgentCache::PathForKey(const std::string& key) const {
  std::string sanitized = key;
  for (char& c : sanitized) {
    if (!isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_' &&
        c != '.') {
      c = '_';
    }
  }
  return dir_ + "/" + sanitized + ".agent";
}

std::unique_ptr<rl::Agent> AgentCache::GetOrTrain(const AgentRequest& request) {
  AMS_CHECK(request.oracle != nullptr);
  const std::string path = PathForKey(request.key);
  if (std::unique_ptr<rl::Agent> cached = rl::Agent::Load(path)) {
    return cached;
  }
  rl::AgentTrainer trainer(request.oracle, request.config);
  std::unique_ptr<rl::Agent> agent = trainer.Train();
  agent->Save(path);
  return agent;
}

std::vector<std::unique_ptr<rl::Agent>> AgentCache::GetOrTrainAll(
    const std::vector<AgentRequest>& requests) {
  std::vector<std::unique_ptr<rl::Agent>> agents(requests.size());
  // Load hits inline; train misses concurrently.
  std::vector<size_t> misses;
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::string path = PathForKey(requests[i].key);
    agents[i] = rl::Agent::Load(path);
    if (agents[i] == nullptr) misses.push_back(i);
  }
  if (misses.empty()) return agents;
  const int workers = std::min<int>(util::ThreadPool::DefaultThreads(),
                                    static_cast<int>(misses.size()));
  util::ParallelFor(0, static_cast<int>(misses.size()), workers, [&](int k) {
    const size_t i = misses[static_cast<size_t>(k)];
    agents[i] = GetOrTrain(requests[i]);
  });
  return agents;
}

}  // namespace ams::eval
