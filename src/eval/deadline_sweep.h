#ifndef AMS_EVAL_DEADLINE_SWEEP_H_
#define AMS_EVAL_DEADLINE_SWEEP_H_

#include <string>
#include <vector>

#include "data/oracle.h"
#include "eval/recall_curve.h"

namespace ams::eval {

/// Average value recall achieved under each deadline (Fig. 10 / Fig. 12).
struct DeadlineSweep {
  std::string policy_name;
  std::vector<double> deadlines_s;
  std::vector<double> avg_recall;
};

/// Default deadline grid 0.25 .. 5.0 s.
std::vector<double> DefaultDeadlines();

/// Runs the policy on every item for every deadline and averages the recall.
DeadlineSweep ComputeDeadlineSweep(const PolicyFactory& factory,
                                   const data::Oracle& oracle,
                                   const std::vector<int>& items,
                                   const std::vector<double>& deadlines,
                                   int num_threads = 0);

/// The optimal* upper bound's average recall per deadline (§V-C).
DeadlineSweep ComputeOptimalStarSweep(const data::Oracle& oracle,
                                      const std::vector<int>& items,
                                      const std::vector<double>& deadlines,
                                      int num_threads = 0);

}  // namespace ams::eval

#endif  // AMS_EVAL_DEADLINE_SWEEP_H_
