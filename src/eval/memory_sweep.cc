#include "eval/memory_sweep.h"

#include <thread>

#include "core/labeling_service.h"
#include "sched/optimal_star.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ams::eval {

std::vector<double> DefaultMemoryDeadlines() {
  return {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0};
}

MemorySweep ComputeMemorySweep(rl::Agent* agent, const data::Oracle& oracle,
                               const std::vector<int>& items,
                               double mem_budget_mb,
                               const std::vector<double>& deadlines,
                               uint64_t seed, int num_threads) {
  AMS_CHECK(!items.empty() && !deadlines.empty());
  if (num_threads <= 0) num_threads = util::ThreadPool::DefaultThreads();
  MemorySweep sweep;
  sweep.policy_name = agent != nullptr ? "algorithm2" : "random";
  sweep.mem_budget_mb = mem_budget_mb;
  sweep.deadlines_s = deadlines;
  sweep.avg_recall.assign(deadlines.size(), 0.0);

  std::vector<core::WorkItem> work;
  work.reserve(items.size());
  for (int item : items) work.push_back(core::WorkItem::Stored(item));

  // One Algorithm-2 (or random-packing) session per deadline; agents are
  // cloned per worker by the session. Only recall is read here, so the
  // sessions run on the lean kernel path, and agent sessions batch their
  // Q-queries across each worker's co-scheduled items.
  for (size_t d = 0; d < deadlines.size(); ++d) {
    core::ScheduleConstraints constraints;
    constraints.time_budget_s = deadlines[d];
    constraints.memory_budget_mb = mem_budget_mb;
    core::LabelingServiceBuilder builder(&oracle.zoo());
    builder.WithOracle(&oracle)
        .WithConstraints(constraints)
        .WithKernelMode(core::KernelMode::kLean)
        .WithWorkers(num_threads);
    if (agent != nullptr) {
      builder.WithMode(core::ExecutionMode::kParallel)
          .WithPredictor(agent)
          .WithBatchedPrediction(true);
    } else {
      builder.WithMode(core::ExecutionMode::kParallelRandom)
          .WithSeed(util::HashCombine(seed, static_cast<uint64_t>(d)));
    }
    core::LabelingService service = builder.Build();
    const std::vector<core::LabelOutcome> outcomes =
        service.SubmitBatch(work);
    double sum = 0.0;
    for (const core::LabelOutcome& outcome : outcomes) sum += outcome.recall;
    sweep.avg_recall[d] = sum / static_cast<double>(items.size());
  }
  return sweep;
}

MemorySweep ComputeOptimalStarMemorySweep(const data::Oracle& oracle,
                                          const std::vector<int>& items,
                                          double mem_budget_mb,
                                          const std::vector<double>& deadlines,
                                          int num_threads) {
  AMS_CHECK(!items.empty() && !deadlines.empty());
  if (num_threads <= 0) num_threads = util::ThreadPool::DefaultThreads();
  MemorySweep sweep;
  sweep.policy_name = "optimal_star";
  sweep.mem_budget_mb = mem_budget_mb;
  sweep.deadlines_s = deadlines;
  sweep.avg_recall.assign(deadlines.size(), 0.0);
  const int n = static_cast<int>(items.size());
  const int chunk = (n + num_threads - 1) / num_threads;
  std::vector<std::vector<double>> partial(
      static_cast<size_t>(num_threads),
      std::vector<double>(deadlines.size(), 0.0));
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    const int lo = t * chunk;
    const int hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([&, t, lo, hi] {
      for (int i = lo; i < hi; ++i) {
        const int item = items[static_cast<size_t>(i)];
        const double total = oracle.TrueTotalValue(item);
        for (size_t d = 0; d < deadlines.size(); ++d) {
          const double value = sched::OptimalStarValueDeadlineMemory(
              oracle, item, deadlines[d], mem_budget_mb);
          partial[static_cast<size_t>(t)][d] +=
              total > 0.0 ? std::min(1.0, value / total) : 1.0;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& p : partial) {
    for (size_t d = 0; d < deadlines.size(); ++d) sweep.avg_recall[d] += p[d];
  }
  for (double& r : sweep.avg_recall) r /= static_cast<double>(n);
  return sweep;
}

}  // namespace ams::eval
