#include "eval/memory_sweep.h"

#include <thread>

#include "sched/optimal_star.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ams::eval {

std::vector<double> DefaultMemoryDeadlines() {
  return {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0};
}

MemorySweep ComputeMemorySweep(rl::Agent* agent, const data::Oracle& oracle,
                               const std::vector<int>& items,
                               double mem_budget_mb,
                               const std::vector<double>& deadlines,
                               uint64_t seed, int num_threads) {
  AMS_CHECK(!items.empty() && !deadlines.empty());
  if (num_threads <= 0) num_threads = util::ThreadPool::DefaultThreads();
  MemorySweep sweep;
  sweep.policy_name = agent != nullptr ? "algorithm2" : "random";
  sweep.mem_budget_mb = mem_budget_mb;
  sweep.deadlines_s = deadlines;
  sweep.avg_recall.assign(deadlines.size(), 0.0);

  const int n = static_cast<int>(items.size());
  const int chunk = (n + num_threads - 1) / num_threads;
  std::vector<std::vector<double>> partial(
      static_cast<size_t>(num_threads),
      std::vector<double>(deadlines.size(), 0.0));
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    const int lo = t * chunk;
    const int hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([&, t, lo, hi] {
      std::unique_ptr<rl::Agent> local_agent =
          agent != nullptr ? agent->Clone() : nullptr;
      for (int i = lo; i < hi; ++i) {
        for (size_t d = 0; d < deadlines.size(); ++d) {
          sched::ParallelRunConfig config;
          config.time_budget = deadlines[d];
          config.mem_budget_mb = mem_budget_mb;
          config.seed = util::HashCombine(seed, static_cast<uint64_t>(d));
          const auto run = sched::RunParallel(
              local_agent != nullptr ? sched::ParallelPolicyKind::kAlgorithm2
                                     : sched::ParallelPolicyKind::kRandom,
              local_agent.get(), oracle, items[static_cast<size_t>(i)], config);
          partial[static_cast<size_t>(t)][d] += run.recall;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& p : partial) {
    for (size_t d = 0; d < deadlines.size(); ++d) sweep.avg_recall[d] += p[d];
  }
  for (double& r : sweep.avg_recall) r /= static_cast<double>(n);
  return sweep;
}

MemorySweep ComputeOptimalStarMemorySweep(const data::Oracle& oracle,
                                          const std::vector<int>& items,
                                          double mem_budget_mb,
                                          const std::vector<double>& deadlines,
                                          int num_threads) {
  AMS_CHECK(!items.empty() && !deadlines.empty());
  if (num_threads <= 0) num_threads = util::ThreadPool::DefaultThreads();
  MemorySweep sweep;
  sweep.policy_name = "optimal_star";
  sweep.mem_budget_mb = mem_budget_mb;
  sweep.deadlines_s = deadlines;
  sweep.avg_recall.assign(deadlines.size(), 0.0);
  const int n = static_cast<int>(items.size());
  const int chunk = (n + num_threads - 1) / num_threads;
  std::vector<std::vector<double>> partial(
      static_cast<size_t>(num_threads),
      std::vector<double>(deadlines.size(), 0.0));
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    const int lo = t * chunk;
    const int hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([&, t, lo, hi] {
      for (int i = lo; i < hi; ++i) {
        const int item = items[static_cast<size_t>(i)];
        const double total = oracle.TrueTotalValue(item);
        for (size_t d = 0; d < deadlines.size(); ++d) {
          const double value = sched::OptimalStarValueDeadlineMemory(
              oracle, item, deadlines[d], mem_budget_mb);
          partial[static_cast<size_t>(t)][d] +=
              total > 0.0 ? std::min(1.0, value / total) : 1.0;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& p : partial) {
    for (size_t d = 0; d < deadlines.size(); ++d) sweep.avg_recall[d] += p[d];
  }
  for (double& r : sweep.avg_recall) r /= static_cast<double>(n);
  return sweep;
}

}  // namespace ams::eval
