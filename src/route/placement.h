#ifndef AMS_ROUTE_PLACEMENT_H_
#define AMS_ROUTE_PLACEMENT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace ams::route {

/// The routing identity of one request: what placement policies hash.
struct RouteKey {
  /// Tenant owning the request. Part of the hash, so two tenants sending
  /// the same item ids spread independently.
  int tenant_id = 0;
  /// Stored item id, or the router's live-request counter for live scenes.
  uint64_t key = 0;
};

/// Read-only load view handed to Placement::ShardFor: shard count plus each
/// shard's admission-queue depth gauge (a lock-free read of
/// serve::AdmissionQueue::size() — a recent value, not a serialized one).
class ShardLoadView {
 public:
  virtual ~ShardLoadView() = default;
  virtual int num_shards() const = 0;
  virtual size_t QueueDepth(int shard) const = 0;
};

/// Pluggable placement seam: which shard serves a request. Implementations
/// must be thread-safe — every enqueuer calls ShardFor concurrently.
class Placement {
 public:
  virtual ~Placement() = default;
  /// The shard for `key`, in [0, load.num_shards()).
  virtual int ShardFor(const RouteKey& key, const ShardLoadView& load) = 0;
  virtual const char* name() const = 0;
};

/// Consistent hashing on (tenant, key) over a ring of virtual nodes: the
/// same key always lands on the same shard for a given shard count (a pure
/// function of the count — stable across router restarts and processes),
/// and when the shard count changes only ~1/N of keys move, instead of
/// nearly all of them under modulo hashing. The default placement: it keeps
/// a stored item's replay cache and any future shard-local state on one
/// shard without coordination.
class ConsistentHashPlacement final : public Placement {
 public:
  int ShardFor(const RouteKey& key, const ShardLoadView& load) override;
  const char* name() const override { return "hash"; }

 private:
  static constexpr int kVirtualNodesPerShard = 64;

  struct RingPoint {
    uint64_t hash;
    int shard;
  };

  /// The ring for the current shard count, rebuilt lazily when the count
  /// changes (which for a fixed router is never after the first call). The
  /// mutex guards the rebuild-or-lookup; the critical section is one binary
  /// search over 64*N points.
  mutable std::mutex mu_;
  std::vector<RingPoint> ring_;
  int ring_shards_ = 0;
};

/// Least-queued: the shard with the shallowest admission queue (ties: the
/// lowest index). A full scan per request — exact, but every enqueuer reads
/// every depth gauge; prefer p2c beyond a handful of shards.
class LeastQueuedPlacement final : public Placement {
 public:
  int ShardFor(const RouteKey& key, const ShardLoadView& load) override;
  const char* name() const override { return "least"; }
};

/// Power-of-two-choices: sample two distinct shards (seeded counter hash,
/// deterministic for a given seed and call ordinal) and take the less
/// loaded (ties: the lower index). The classic load-balancing result:
/// two random choices already collapse the maximum load to
/// O(log log n / log 2), at two gauge reads per request instead of N.
class PowerOfTwoChoicesPlacement final : public Placement {
 public:
  explicit PowerOfTwoChoicesPlacement(uint64_t seed = 0x9e3779b97f4a7c15ull);

  int ShardFor(const RouteKey& key, const ShardLoadView& load) override;
  const char* name() const override { return "p2c"; }

 private:
  const uint64_t seed_;
  std::atomic<uint64_t> counter_{0};
};

/// Builds the placement named "hash" / "least" / "p2c" (`seed` feeds p2c
/// only); nullptr on anything else.
std::unique_ptr<Placement> PlacementFromName(const char* name,
                                             uint64_t seed = 0);

}  // namespace ams::route

#endif  // AMS_ROUTE_PLACEMENT_H_
