#ifndef AMS_ROUTE_AGGREGATED_METRICS_H_
#define AMS_ROUTE_AGGREGATED_METRICS_H_

#include <string>
#include <vector>

#include "serve/metrics.h"

namespace ams::route {

/// Cluster-level view over N shard metric registries: merges counters
/// (summed), latency histograms (bucket-wise — exact, all registries share
/// the fixed bucket layout), and per-class / per-tenant slices into one
/// aggregate, while keeping the per-shard snapshots available as a
/// breakdown. Reading is scrape-consistent, not transactional: each shard
/// keeps serving while it is merged, so cross-counter identities hold only
/// at quiescence — the same contract as scraping a single live registry.
class AggregatedMetrics {
 public:
  /// The registries must outlive this view.
  explicit AggregatedMetrics(std::vector<const serve::Metrics*> shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Merges every shard registry into `out` (see serve::Metrics::MergeFrom;
  /// `out` must be private to the caller). Exposed separately from the JSON
  /// so programmatic consumers get summed counters without parsing.
  void MergeInto(serve::Metrics* out) const;

  /// One JSON object:
  ///   {"aggregate": <merged registry snapshot>,
  ///    "shards": [<shard 0 snapshot>, ...],
  ///    "router": <extra_json>}            (omitted when extra_json empty)
  /// `uptime_s` stamps the aggregate's throughput axis; per-shard snapshots
  /// use each registry's own attached clock. `extra_json`, when non-empty,
  /// must be a complete JSON value (the router's own counters).
  std::string SnapshotJson(double uptime_s,
                           const std::string& extra_json = "") const;

 private:
  std::vector<const serve::Metrics*> shards_;
};

}  // namespace ams::route

#endif  // AMS_ROUTE_AGGREGATED_METRICS_H_
