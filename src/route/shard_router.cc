#include "route/shard_router.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "route/aggregated_metrics.h"
#include "util/check.h"

namespace ams::route {

RebalancePlan PlanRebalance(const std::vector<size_t>& depths, double ratio,
                            int max_moves) {
  RebalancePlan plan;
  if (depths.size() < 2 || max_moves < 1) return plan;
  int from = 0;
  int to = 0;
  for (int i = 1; i < static_cast<int>(depths.size()); ++i) {
    const size_t depth = depths[static_cast<size_t>(i)];
    if (depth > depths[static_cast<size_t>(from)]) from = i;
    if (depth < depths[static_cast<size_t>(to)]) to = i;
  }
  const size_t hot = depths[static_cast<size_t>(from)];
  const size_t cold = depths[static_cast<size_t>(to)];
  // Half the gap: the source never ends up shallower than the destination,
  // so repeated ticks converge monotonically instead of ping-ponging.
  const int moves =
      std::min<long>(max_moves, static_cast<long>((hot - cold) / 2));
  if (moves < 1) return plan;
  if (static_cast<double>(hot) <=
      ratio * static_cast<double>(std::max<size_t>(cold, 1))) {
    return plan;
  }
  plan.from = from;
  plan.to = to;
  plan.moves = moves;
  return plan;
}

ShardRouter::ShardRouter(const std::vector<core::LabelingService*>& sessions,
                         RouterOptions options)
    : options_(options),
      clock_(options.serve.clock != nullptr ? options.serve.clock
                                            : &serve::Clock::Monotonic()) {
  AMS_CHECK(!sessions.empty(), "a router needs at least one shard session");
  for (size_t i = 0; i < sessions.size(); ++i) {
    AMS_CHECK(sessions[i] != nullptr);
    for (size_t j = i + 1; j < sessions.size(); ++j) {
      // A session's predictor clone pool serves one runtime's workers;
      // sharing it across shards would race.
      AMS_CHECK(sessions[i] != sessions[j],
                "each shard needs its own labeling session");
    }
  }
  AMS_CHECK(options_.rebalance_ratio >= 1.0,
            "rebalance_ratio below 1 would migrate on perfect balance");
  AMS_CHECK(options_.max_migrate_per_tick >= 1);
  if (options_.placement != nullptr) {
    placement_ = options_.placement;
  } else {
    owned_placement_ = std::make_unique<ConsistentHashPlacement>();
    placement_ = owned_placement_.get();
  }
  // Cross-shard forward coalescing: resolve the AMS_COALESCE default here
  // (not per shard) and build ONE coalescer every shard joins, so rounds
  // rendezvous across the whole cluster rather than within each shard. An
  // externally supplied serve.coalescer is passed through untouched.
  if (options_.serve.coalescer == nullptr) {
    if (!options_.serve.coalesce_forwards &&
        serve::CoalesceForwardsFromEnv()) {
      options_.serve.coalesce_forwards = true;
    }
    if (options_.serve.coalesce_forwards) {
      serve::ForwardCoalescer::Options coalesce;
      coalesce.tracer = options_.serve.tracer;
      coalesce.clock = clock_;
      owned_coalescer_ = std::make_unique<serve::ForwardCoalescer>(coalesce);
      options_.serve.coalescer = owned_coalescer_.get();
    }
  }
  shards_.reserve(sessions.size());
  for (size_t i = 0; i < sessions.size(); ++i) {
    // Uniform serve options except the shard id: shard i's trace lanes and
    // trace ids carry its own index, all feeding the one shared tracer (and,
    // when coalescing, the one shared cluster coalescer).
    serve::ServeOptions shard_options = options_.serve;
    shard_options.shard_id = static_cast<int>(i);
    shards_.push_back(
        std::make_unique<serve::ServerRuntime>(sessions[i], shard_options));
  }
  routed_ = std::make_unique<std::atomic<long>[]>(sessions.size());
  for (size_t i = 0; i < sessions.size(); ++i) {
    routed_[i].store(0, std::memory_order_relaxed);
  }
  start_time_s_ = clock_->NowSeconds();
  if (options_.rebalance_interval_s > 0.0) {
    rebalancer_ = std::thread(&ShardRouter::RebalanceLoop, this);
  }
}

ShardRouter::~ShardRouter() { Shutdown(); }

size_t ShardRouter::QueueDepth(int shard) const {
  return shards_[static_cast<size_t>(shard)]->admission_queue().size();
}

std::future<serve::ServeResult> ShardRouter::Enqueue(
    const core::WorkItem& item) {
  return Enqueue(item, RequestOptions{});
}

std::future<serve::ServeResult> ShardRouter::Enqueue(const core::WorkItem& item,
                                                     double slack_s) {
  RequestOptions request;
  request.slack_s = slack_s;
  return Enqueue(item, request);
}

std::future<serve::ServeResult> ShardRouter::Enqueue(
    const core::WorkItem& item, serve::PriorityClass cls) {
  RequestOptions request;
  request.priority_class = cls;
  return Enqueue(item, request);
}

std::future<serve::ServeResult> ShardRouter::Enqueue(const core::WorkItem& item,
                                                     double slack_s,
                                                     serve::PriorityClass cls) {
  RequestOptions request;
  request.slack_s = slack_s;
  request.priority_class = cls;
  return Enqueue(item, request);
}

std::future<serve::ServeResult> ShardRouter::Enqueue(
    const core::WorkItem& item, const RequestOptions& request) {
  RouteKey key;
  key.tenant_id = request.tenant_id;
  key.key = item.item >= 0
                ? static_cast<uint64_t>(item.item)
                : live_sequence_.fetch_add(1, std::memory_order_relaxed);
  const int shard = placement_->ShardFor(key, *this);
  AMS_CHECK(shard >= 0 && shard < num_shards(),
            "placement returned an out-of-range shard");
  routed_[static_cast<size_t>(shard)].fetch_add(1, std::memory_order_relaxed);
  obs::Tracer* tracer = options_.serve.tracer;
  if (tracer != nullptr && tracer->enabled()) {
    // Placement precedes admission, so the request has no trace id yet:
    // the instant is lane-scoped (id 0), recording where the router sent
    // traffic and in which class. Lane lookup is a mutex-guarded map probe;
    // placement is not the per-tick hot path, so no cached pointer here.
    obs::TraceEvent event;
    event.ts_s = clock_->NowSeconds();
    event.phase = static_cast<uint8_t>(obs::Phase::kPlacement);
    event.a0 = shard;
    event.a1 = static_cast<int32_t>(request.priority_class);
    tracer->EnsureLane(static_cast<uint16_t>(shard), obs::kAdmissionLane)
        ->Record(event);
  }
  return shards_[static_cast<size_t>(shard)]->Enqueue(item, request);
}

int ShardRouter::RebalanceOnce() {
  std::lock_guard<std::mutex> lock(rebalance_mu_);
  rebalance_ticks_.fetch_add(1, std::memory_order_relaxed);
  if (shut_down_ || num_shards() < 2) return 0;
  std::vector<size_t> depths(static_cast<size_t>(num_shards()));
  for (int i = 0; i < num_shards(); ++i) {
    depths[static_cast<size_t>(i)] = QueueDepth(i);
  }
  const RebalancePlan plan = PlanRebalance(
      depths, options_.rebalance_ratio, options_.max_migrate_per_tick);
  if (plan.moves == 0) return 0;
  serve::ServerRuntime& hot = *shards_[static_cast<size_t>(plan.from)];
  serve::ServerRuntime& cold = *shards_[static_cast<size_t>(plan.to)];
  std::vector<serve::QueuedRequest> batch;
  batch.reserve(static_cast<size_t>(plan.moves));
  // The hot shard's workers pop concurrently, so fewer than plan.moves may
  // remain to steal — StealBatch takes what is there.
  hot.StealQueued(plan.moves, &batch);
  int moved = 0;
  obs::Tracer* tracer = options_.serve.tracer;
  obs::TraceBuffer* out_lane = nullptr;
  obs::TraceBuffer* in_lane = nullptr;
  if (tracer != nullptr && tracer->enabled()) {
    out_lane = tracer->EnsureLane(static_cast<uint16_t>(plan.from),
                                  obs::kAdmissionLane);
    in_lane = tracer->EnsureLane(static_cast<uint16_t>(plan.to),
                                 obs::kAdmissionLane);
  }
  for (serve::QueuedRequest& stolen : batch) {
    // Both migration instants are recorded here, where source and
    // destination are both known: kMigrateOut on the hot shard's lane the
    // moment the request leaves it, kMigrateIn on the cold shard's lane
    // once Requeue accepts it. The trace id rides the QueuedRequest, so the
    // pair stitches the request's cross-shard span chain together.
    const obs::TraceContext trace = stolen.trace;
    if (out_lane != nullptr && trace.sampled) {
      obs::TraceEvent event;
      event.id = trace.id;
      event.ts_s = clock_->NowSeconds();
      event.phase = static_cast<uint8_t>(obs::Phase::kMigrateOut);
      event.a0 = plan.from;
      event.a1 = plan.to;
      out_lane->Record(event);
    }
    if (cold.RequeueMigrated(std::move(stolen))) {
      ++moved;
      if (in_lane != nullptr && trace.sampled) {
        obs::TraceEvent event;
        event.id = trace.id;
        event.ts_s = clock_->NowSeconds();
        event.phase = static_cast<uint8_t>(obs::Phase::kMigrateIn);
        event.a0 = plan.from;
        event.a1 = plan.to;
        in_lane->Record(event);
      }
      continue;
    }
    // Unreachable while the shutdown ordering holds (shut_down_ flips under
    // rebalance_mu_ before any queue closes); kept as a safety net so a
    // stolen request can never be stranded without a result.
    if (hot.RequeueMigrated(std::move(stolen))) {
      // Bounced back home: close the hop so every kMigrateOut still pairs
      // with exactly one kMigrateIn (span conservation).
      if (out_lane != nullptr && trace.sampled) {
        obs::TraceEvent event;
        event.id = trace.id;
        event.ts_s = clock_->NowSeconds();
        event.phase = static_cast<uint8_t>(obs::Phase::kMigrateIn);
        event.a0 = plan.from;
        event.a1 = plan.from;
        out_lane->Record(event);
      }
    } else {
      serve::ServeResult result;
      result.status = serve::ServeStatus::kShutdown;
      stolen.promise.set_value(std::move(result));
    }
  }
  migrated_.fetch_add(moved, std::memory_order_relaxed);
  return moved;
}

void ShardRouter::RebalanceLoop() {
  // The tick is due on the serve clock (ManualClock => deterministic
  // rebalance times) but the thread parks on a real condition variable: a
  // short real-time poll notices manual clock advances without busy-waiting.
  constexpr auto kPoll = std::chrono::milliseconds(2);
  double next_due_s = clock_->NowSeconds() + options_.rebalance_interval_s;
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_rebalancer_) {
    if (clock_->NowSeconds() >= next_due_s) {
      lock.unlock();
      RebalanceOnce();
      next_due_s = clock_->NowSeconds() + options_.rebalance_interval_s;
      lock.lock();
      continue;
    }
    stop_cv_.wait_for(lock, kPoll, [this] { return stop_rebalancer_; });
  }
}

void ShardRouter::Drain() {
  for (const std::unique_ptr<serve::ServerRuntime>& shard : shards_) {
    shard->Drain();
  }
}

void ShardRouter::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_rebalancer_ = true;
  }
  stop_cv_.notify_all();
  if (rebalancer_.joinable()) rebalancer_.join();
  {
    // After this flips, no rebalance pass will touch the queues again, so
    // the shard shutdowns below can never race a migration.
    std::lock_guard<std::mutex> lock(rebalance_mu_);
    shut_down_ = true;
  }
  for (const std::unique_ptr<serve::ServerRuntime>& shard : shards_) {
    shard->Shutdown();
  }
}

void ShardRouter::DumpTrace(std::ostream& out) const {
  DumpTrace(out, obs::ChromeTraceSink());
}

void ShardRouter::DumpTrace(std::ostream& out,
                            const obs::TraceSink& sink) const {
  const obs::Tracer* tracer = options_.serve.tracer;
  sink.Write(tracer != nullptr ? tracer->Collect()
                               : std::vector<obs::TraceEvent>(),
             out);
}

std::string ShardRouter::MetricsJson() const {
  std::vector<const serve::Metrics*> registries;
  registries.reserve(shards_.size());
  for (const std::unique_ptr<serve::ServerRuntime>& shard : shards_) {
    registries.push_back(&shard->metrics());
  }
  std::ostringstream router;
  router << "{\"shards\": " << num_shards() << ", \"placement\": \""
         << placement_->name() << "\", \"routed\": [";
  for (int i = 0; i < num_shards(); ++i) {
    if (i > 0) router << ", ";
    router << routed(i);
  }
  router << "], \"migrated\": " << migrated()
         << ", \"rebalance_ticks\": " << rebalance_ticks();
  if (owned_coalescer_ != nullptr) {
    // Cluster-coalescer view (the per-shard "coalesced_*" counters split the
    // same rounds by leader shard; these are the whole-cluster totals).
    router << ", \"coalescer\": {\"rounds\": " << owned_coalescer_->rounds()
           << ", \"gathered_rows\": " << owned_coalescer_->gathered_rows()
           << ", \"unique_rows\": " << owned_coalescer_->unique_rows()
           << ", \"max_batch_rows\": " << owned_coalescer_->max_batch_rows()
           << "}";
  }
  router << "}";
  return AggregatedMetrics(registries)
      .SnapshotJson(clock_->NowSeconds() - start_time_s_, router.str());
}

}  // namespace ams::route
