#include "route/placement.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace ams::route {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash. Pure arithmetic —
/// identical on every platform and run, which is what makes hash placement
/// restart- and process-stable.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashKey(const RouteKey& key) {
  return Mix64(Mix64(static_cast<uint64_t>(static_cast<int64_t>(
                   key.tenant_id))) ^
               key.key);
}

}  // namespace

int ConsistentHashPlacement::ShardFor(const RouteKey& key,
                                      const ShardLoadView& load) {
  const int shards = load.num_shards();
  AMS_CHECK(shards > 0, "placement over zero shards");
  if (shards == 1) return 0;
  const uint64_t h = HashKey(key);
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_shards_ != shards) {
    ring_.clear();
    ring_.reserve(static_cast<size_t>(shards) * kVirtualNodesPerShard);
    for (int shard = 0; shard < shards; ++shard) {
      for (int v = 0; v < kVirtualNodesPerShard; ++v) {
        // Each virtual node's position is a pure function of (shard, v):
        // the ring for N shards is identical in every process.
        const uint64_t point =
            Mix64((static_cast<uint64_t>(shard) << 32) |
                  static_cast<uint64_t>(v));
        ring_.push_back({point, shard});
      }
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const RingPoint& a, const RingPoint& b) {
                // Shard index breaks hash ties so the ring order is total
                // and deterministic even on a (2^-64) collision.
                return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
              });
    ring_shards_ = shards;
  }
  // First ring point clockwise of the key's hash, wrapping at the top.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const RingPoint& p, uint64_t value) { return p.hash < value; });
  return it == ring_.end() ? ring_.front().shard : it->shard;
}

int LeastQueuedPlacement::ShardFor(const RouteKey& /*key*/,
                                   const ShardLoadView& load) {
  const int shards = load.num_shards();
  AMS_CHECK(shards > 0, "placement over zero shards");
  int best = 0;
  size_t best_depth = load.QueueDepth(0);
  for (int shard = 1; shard < shards; ++shard) {
    const size_t depth = load.QueueDepth(shard);
    if (depth < best_depth) {
      best = shard;
      best_depth = depth;
    }
  }
  return best;
}

PowerOfTwoChoicesPlacement::PowerOfTwoChoicesPlacement(uint64_t seed)
    : seed_(seed) {}

int PowerOfTwoChoicesPlacement::ShardFor(const RouteKey& /*key*/,
                                         const ShardLoadView& load) {
  const int shards = load.num_shards();
  AMS_CHECK(shards > 0, "placement over zero shards");
  if (shards == 1) return 0;
  // Two pseudo-random draws from a seeded counter: deterministic for a
  // given seed and call ordinal (no global RNG), contention-free.
  const uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t draw = Mix64(seed_ ^ n);
  const int a = static_cast<int>(draw % static_cast<uint64_t>(shards));
  // Second choice from the upper bits, shifted past the first so the two
  // candidates are always distinct.
  const int b = (a + 1 +
                 static_cast<int>((draw >> 32) %
                                  static_cast<uint64_t>(shards - 1))) %
                shards;
  const size_t depth_a = load.QueueDepth(a);
  const size_t depth_b = load.QueueDepth(b);
  if (depth_a != depth_b) return depth_a < depth_b ? a : b;
  return std::min(a, b);
}

std::unique_ptr<Placement> PlacementFromName(const char* name, uint64_t seed) {
  if (std::strcmp(name, "hash") == 0) {
    return std::make_unique<ConsistentHashPlacement>();
  }
  if (std::strcmp(name, "least") == 0) {
    return std::make_unique<LeastQueuedPlacement>();
  }
  if (std::strcmp(name, "p2c") == 0) {
    return seed != 0 ? std::make_unique<PowerOfTwoChoicesPlacement>(seed)
                     : std::make_unique<PowerOfTwoChoicesPlacement>();
  }
  return nullptr;
}

}  // namespace ams::route
