#include "route/aggregated_metrics.h"

#include <sstream>
#include <utility>

#include "util/check.h"

namespace ams::route {

AggregatedMetrics::AggregatedMetrics(std::vector<const serve::Metrics*> shards)
    : shards_(std::move(shards)) {
  AMS_CHECK(!shards_.empty(), "aggregating zero shards");
  for (const serve::Metrics* shard : shards_) {
    AMS_CHECK(shard != nullptr, "null shard registry");
  }
}

void AggregatedMetrics::MergeInto(serve::Metrics* out) const {
  AMS_CHECK(out != nullptr);
  for (const serve::Metrics* shard : shards_) {
    out->MergeFrom(*shard);
  }
}

std::string AggregatedMetrics::SnapshotJson(
    double uptime_s, const std::string& extra_json) const {
  serve::Metrics merged;
  MergeInto(&merged);
  std::ostringstream out;
  out << "{\n\"aggregate\": " << merged.SnapshotJson(uptime_s)
      << ",\n\"shards\": [";
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i > 0) out << ", ";
    out << shards_[i]->SnapshotJson();
  }
  out << "]";
  if (!extra_json.empty()) out << ",\n\"router\": " << extra_json;
  out << "\n}";
  return out.str();
}

}  // namespace ams::route
