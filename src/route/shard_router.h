#ifndef AMS_ROUTE_SHARD_ROUTER_H_
#define AMS_ROUTE_SHARD_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "core/labeling_service.h"
#include "route/placement.h"
#include "serve/clock.h"
#include "serve/server_runtime.h"

namespace ams::route {

/// Router configuration. The per-shard serve options are uniform: every
/// shard runs the same admission policy, so a request's admission outcome
/// does not depend on where placement sent it.
struct RouterOptions {
  /// Applied to every shard runtime. `serve.clock` is shared by all shards
  /// and the router's rebalance tick — migration moves absolute deadline
  /// stamps between shards, which is only meaningful on one time axis.
  /// `serve.workers` is the per-shard worker count (<= 0 resolves per shard
  /// from its session, as in ServerRuntime).
  serve::ServeOptions serve;
  /// Placement policy; borrowed (must outlive the router). Null = an owned
  /// ConsistentHashPlacement, the deterministic default.
  Placement* placement = nullptr;
  /// Rebalance tick period on the serve clock; > 0 starts a background
  /// rebalancer thread, <= 0 disables rebalancing (RebalanceOnce() can
  /// still be called manually — deterministic tests drive it under a
  /// ManualClock).
  double rebalance_interval_s = 0.0;
  /// A tick migrates only when the hottest queue exceeds `rebalance_ratio`
  /// times the coldest (coldest counted as at least 1): small imbalances
  /// are left alone — migration has a cost, and placement noise at low
  /// depth is self-correcting.
  double rebalance_ratio = 1.5;
  /// Bound on requests moved per tick; bounds the transient capacity
  /// overshoot on the receiving shard (Requeue bypasses admission gates).
  int max_migrate_per_tick = 32;
};

/// One rebalance decision over a shard-depth vector: move `moves` queued
/// requests from shard `from` to shard `to` (moves == 0: balanced, leave
/// everything alone). Pure and unit-testable.
struct RebalancePlan {
  int from = -1;
  int to = -1;
  int moves = 0;
};

/// The decision rule behind ShardRouter::RebalanceOnce: pick the deepest
/// and shallowest shards (ties: lower index) and move half the gap,
/// `min(max_moves, (deepest - shallowest) / 2)`, so the source stays at
/// least as deep as the destination becomes — the max/min depth ratio
/// strictly shrinks and a tick can never invert the imbalance (no
/// ping-pong). Returns no move when the gap is under 2 or the ratio gate
/// (`deepest > ratio * max(shallowest, 1)`) says the imbalance is not
/// worth the migration cost.
RebalancePlan PlanRebalance(const std::vector<size_t>& depths, double ratio,
                            int max_moves);

/// Sharded serving front end: owns N independent serve::ServerRuntime
/// shards (one labeling session each — sessions cannot be shared across
/// runtimes) behind the same Enqueue(item, RequestOptions) ->
/// future<ServeResult> surface as a single runtime. A pluggable Placement
/// picks the shard per request; a rebalance tick migrates queued-but-not-
/// started work from hot shards to cold ones through the
/// AdmissionQueue::StealBatch / Requeue seam, preserving class, tenant,
/// deadline, and value-density stamps; AggregatedMetrics merges the
/// per-shard registries into one cluster view.
///
/// This is the in-process half of the ROADMAP shard layer: the Placement /
/// StealBatch seams are the points where a multi-process variant swaps in
/// RPC without touching the admission stack.
class ShardRouter final : public ShardLoadView {
 public:
  using RequestOptions = serve::ServerRuntime::RequestOptions;

  /// One shard per session; `sessions` must be non-empty, distinct,
  /// predictor-driven or random-packing, and outlive the router.
  /// Construction spawns every shard's workers (and the rebalancer when
  /// options.rebalance_interval_s > 0).
  explicit ShardRouter(const std::vector<core::LabelingService*>& sessions,
                       RouterOptions options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// The ServerRuntime::Enqueue surface, routed. Stored items key placement
  /// by (tenant, item id) — deterministic under hash placement; live items
  /// key by a router-wide arrival counter (no stable identity to hash).
  std::future<serve::ServeResult> Enqueue(const core::WorkItem& item);
  std::future<serve::ServeResult> Enqueue(const core::WorkItem& item,
                                          double slack_s);
  std::future<serve::ServeResult> Enqueue(const core::WorkItem& item,
                                          serve::PriorityClass cls);
  std::future<serve::ServeResult> Enqueue(const core::WorkItem& item,
                                          double slack_s,
                                          serve::PriorityClass cls);
  std::future<serve::ServeResult> Enqueue(const core::WorkItem& item,
                                          const RequestOptions& request);

  /// Blocks until every accepted request on every shard has completed.
  void Drain();

  /// Stops the rebalancer, then shuts every shard down (stops admission,
  /// completes accepted work, joins workers). Idempotent; implied by
  /// destruction. The ordering guarantees a rebalance tick never races a
  /// closing queue, so migration can never strand a request.
  void Shutdown();

  /// One rebalance pass: plan over the current shard depths
  /// (PlanRebalance), steal from the hot shard, requeue on the cold one.
  /// Returns the number of requests actually moved. Thread-safe
  /// (serialized with the background rebalancer); deterministic tests call
  /// it directly under a ManualClock with no background thread.
  int RebalanceOnce();

  // ShardLoadView (placement reads shard queue depths through this).
  int num_shards() const override {
    return static_cast<int>(shards_.size());
  }
  size_t QueueDepth(int shard) const override;

  serve::ServerRuntime& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  const serve::ServerRuntime& shard(int i) const {
    return *shards_[static_cast<size_t>(i)];
  }
  const RouterOptions& options() const { return options_; }
  const serve::Clock& clock() const { return *clock_; }
  Placement& placement() { return *placement_; }

  /// Requests routed to shard `i` so far (placement decisions, before
  /// admission).
  long routed(int shard) const {
    return routed_[static_cast<size_t>(shard)].load(std::memory_order_relaxed);
  }
  /// Requests moved between shards by rebalancing so far.
  long migrated() const {
    return migrated_.load(std::memory_order_relaxed);
  }
  /// Rebalance passes that ran (including no-op passes).
  long rebalance_ticks() const {
    return rebalance_ticks_.load(std::memory_order_relaxed);
  }

  /// Aggregated-metrics snapshot: {"aggregate": ..., "shards": [...],
  /// "router": {placement, per-shard routed counts, migrated, ticks}}.
  std::string MetricsJson() const;

  /// Exports every shard's retained trace events through `sink` (all lanes
  /// merged, timestamp-sorted). With the default obs::ChromeTraceSink the
  /// output loads in Perfetto / chrome://tracing; an empty trace (no tracer
  /// configured, or nothing recorded) still writes a valid document.
  void DumpTrace(std::ostream& out) const;
  void DumpTrace(std::ostream& out, const obs::TraceSink& sink) const;

 private:
  void RebalanceLoop();

  RouterOptions options_;
  const serve::Clock* clock_;
  std::unique_ptr<Placement> owned_placement_;
  Placement* placement_;
  /// The cluster-wide forward coalescer (when serve.coalesce_forwards or
  /// AMS_COALESCE asks for one): every shard joins the SAME instance, so a
  /// round pools stale Q rows across ALL shards' workers — one device-sized
  /// batch per cluster tick. Declared before shards_ so the shards (whose
  /// workers hold handles into it) are destroyed first.
  std::unique_ptr<serve::ForwardCoalescer> owned_coalescer_;
  std::vector<std::unique_ptr<serve::ServerRuntime>> shards_;
  /// Heap array because vector<atomic> cannot resize (atomics are
  /// immovable); sized num_shards at construction.
  std::unique_ptr<std::atomic<long>[]> routed_;
  std::atomic<uint64_t> live_sequence_{0};
  std::atomic<long> migrated_{0};
  std::atomic<long> rebalance_ticks_{0};
  double start_time_s_ = 0.0;

  /// Serializes RebalanceOnce with the background loop and with Shutdown:
  /// shut_down_ flips under this mutex before the shards close, so a
  /// rebalance pass never sees a closing queue mid-migration.
  std::mutex rebalance_mu_;
  bool shut_down_ = false;
  std::thread rebalancer_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_rebalancer_ = false;
};

}  // namespace ams::route

#endif  // AMS_ROUTE_SHARD_ROUTER_H_
