#ifndef AMS_DATA_ORACLE_H_
#define AMS_DATA_ORACLE_H_

#include <vector>

#include "data/dataset.h"
#include "zoo/model_zoo.h"

namespace ams::data {

/// Precomputed full-execution ground truth, mirroring the paper's
/// methodology: "we executed all 30 models on 5 datasets and stored the
/// output labels and confidences" (§VI-A). Trainers, policies and metrics
/// replay stored outputs instead of re-running inference.
class Oracle {
 public:
  Oracle(const zoo::ModelZoo* zoo, const Dataset* dataset);

  const zoo::ModelZoo& zoo() const { return *zoo_; }
  const Dataset& dataset() const { return *dataset_; }
  int num_items() const { return dataset_->size(); }
  int num_models() const { return zoo_->num_models(); }

  /// Stored output of `model` on `item` (all labels, incl. low-confidence).
  const std::vector<zoo::LabelOutput>& Output(int item, int model) const;

  /// Valuable (conf >= threshold) subset of the output.
  const std::vector<zoo::LabelOutput>& ValuableOutput(int item, int model) const;

  /// True whenever ValuableOutput is non-empty ("blue box" in Fig. 1).
  bool ModelValuable(int item, int model) const;

  /// Sum of confidences of the model's own valuable labels (no overlap
  /// accounting). The "true output value" by which the Optimal policy of
  /// §VI-B orders models.
  double ModelSoloValue(int item, int model) const;

  /// Sum over all valuable labels of the best confidence any model assigns:
  /// f(M, d), the denominator of the value-recall metric.
  double TrueTotalValue(int item) const;

  /// Best confidence any model assigns to `label` on `item` (the label's
  /// profit p_i), or 0 if no model outputs it valuably.
  double LabelProfit(int item, int label) const;

  /// Number of models with valuable output on `item`.
  int NumValuableModels(int item) const;

  /// Per-item execution-time draw for `model` (jittered, deterministic).
  double ExecutionTime(int item, int model) const;

  /// Sum of execution times of all models with valuable output (the cost of
  /// the Fig. 2 "optimal policy").
  double ValuableTime(int item) const;

  /// Sum of execution times of all models (the Fig. 2 "no policy" cost).
  double TotalTime(int item) const;

 private:
  const zoo::ModelZoo* zoo_;
  const Dataset* dataset_;
  // Indexed [item][model].
  std::vector<std::vector<std::vector<zoo::LabelOutput>>> outputs_;
  std::vector<std::vector<std::vector<zoo::LabelOutput>>> valuable_;
  std::vector<std::vector<double>> solo_value_;
  std::vector<std::vector<double>> exec_time_;
  std::vector<double> true_total_value_;
  // Sparse per-item map label -> profit, stored as sorted pairs.
  std::vector<std::vector<std::pair<int, double>>> label_profit_;
};

}  // namespace ams::data

#endif  // AMS_DATA_ORACLE_H_
