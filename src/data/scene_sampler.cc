#include "data/scene_sampler.h"

#include <algorithm>

#include "util/check.h"
#include "zoo/task.h"

namespace ams::data {

namespace {

using zoo::TaskKind;

constexpr int kNumScenes = 365;
constexpr int kNumObjects = 80;
constexpr int kNumActions = 400;
constexpr int kNumBreeds = 120;
constexpr int kPreferredPerScene = 6;
constexpr int kPreferredActionsPerScene = 4;

// Scene-category weights: Zipf skew permuted per profile (different corpora
// favour different scenes), then re-weighted by the profile's indoor bias.
std::vector<double> BuildSceneWeights(const DatasetProfile& profile,
                                      const zoo::LabelSpace& labels) {
  std::vector<double> zipf = util::ZipfWeights(kNumScenes, profile.scene_zipf_s);
  // Deterministic permutation from the profile seed.
  std::vector<int> perm(kNumScenes);
  for (int i = 0; i < kNumScenes; ++i) perm[i] = i;
  util::Rng rng(profile.profile_seed * 7919 + 13);
  rng.Shuffle(&perm);
  std::vector<double> weights(kNumScenes);
  for (int i = 0; i < kNumScenes; ++i) weights[perm[i]] = zipf[i];
  double indoor_mass = 0.0, total = 0.0;
  for (int i = 0; i < kNumScenes; ++i) {
    total += weights[i];
    if (labels.IsIndoorScene(i)) indoor_mass += weights[i];
  }
  const double indoor_scale =
      profile.indoor_bias * total / std::max(indoor_mass, 1e-9);
  const double outdoor_scale = (1.0 - profile.indoor_bias) * total /
                               std::max(total - indoor_mass, 1e-9);
  for (int i = 0; i < kNumScenes; ++i) {
    weights[i] *= labels.IsIndoorScene(i) ? indoor_scale : outdoor_scale;
  }
  return weights;
}

}  // namespace

SceneSampler::SceneSampler(const DatasetProfile& profile,
                           const zoo::LabelSpace* labels)
    : profile_(profile), labels_(labels) {
  AMS_CHECK(labels != nullptr);
  scene_dist_ =
      util::DiscreteDistribution(BuildSceneWeights(profile, *labels));

  {
    std::vector<double> breed = util::ZipfWeights(kNumBreeds, 0.9);
    std::vector<int> perm(kNumBreeds);
    for (int i = 0; i < kNumBreeds; ++i) perm[i] = i;
    util::Rng rng(profile.profile_seed * 104729 + 7);
    rng.Shuffle(&perm);
    std::vector<double> w(kNumBreeds);
    for (int i = 0; i < kNumBreeds; ++i) w[perm[i]] = breed[i];
    breed_dist_ = util::DiscreteDistribution(w);
  }

  // Emotions: happy/neutral dominate photographs.
  emotion_dist_ = util::DiscreteDistribution(
      {0.06, 0.03, 0.04, 0.42, 0.08, 0.09, 0.28});

  // Scene -> preferred objects/actions. Derived from the scene id only (not
  // the profile seed): the semantic structure of the world is shared across
  // corpora, which is exactly what makes agent knowledge transferable
  // (§VI-D). Indoor scenes prefer household categories (ids 17..39), outdoor
  // scenes prefer vehicles/animals (ids 1..16).
  scene_objects_.resize(kNumScenes);
  scene_actions_.resize(kNumScenes);
  for (int s = 0; s < kNumScenes; ++s) {
    util::Rng rng(util::HashCombine(0xC0FFEEu, static_cast<uint64_t>(s)));
    const bool indoor = labels_->IsIndoorScene(s);
    const int lo = indoor ? 17 : 1;
    const int hi = indoor ? 39 : 16;
    std::vector<int>& objs = scene_objects_[s];
    while (static_cast<int>(objs.size()) < kPreferredPerScene) {
      int cand = rng.UniformInt(lo, hi);
      // A couple of slots may come from the full range for variety.
      if (objs.size() >= 4) cand = rng.UniformInt(1, kNumObjects - 1);
      if (std::find(objs.begin(), objs.end(), cand) == objs.end()) {
        objs.push_back(cand);
      }
    }
    std::vector<int>& acts = scene_actions_[s];
    while (static_cast<int>(acts.size()) < kPreferredActionsPerScene) {
      const int cand = rng.UniformInt(0, kNumActions - 1);
      if (std::find(acts.begin(), acts.end(), cand) == acts.end()) {
        acts.push_back(cand);
      }
    }
  }
}

const std::vector<int>& SceneSampler::PreferredObjects(int scene_id) const {
  AMS_CHECK(scene_id >= 0 && scene_id < kNumScenes);
  return scene_objects_[static_cast<size_t>(scene_id)];
}

const std::vector<int>& SceneSampler::PreferredActions(int scene_id) const {
  AMS_CHECK(scene_id >= 0 && scene_id < kNumScenes);
  return scene_actions_[static_cast<size_t>(scene_id)];
}

zoo::LatentScene SceneSampler::Sample(util::Rng* rng, uint64_t item_seed) const {
  zoo::LatentScene scene;
  scene.item_seed = item_seed;
  scene.scene_id = scene_dist_.Sample(rng);
  scene.indoor = labels_->IsIndoorScene(scene.scene_id);
  scene.scene_clarity = rng->Uniform(profile_.clarity_lo, profile_.clarity_hi);

  // Persons and their attributes.
  if (rng->Bernoulli(profile_.p_person)) {
    int count = 1;
    while (count < 4 && rng->Bernoulli(profile_.extra_person_rate)) ++count;
    for (int i = 0; i < count; ++i) {
      zoo::PersonInstance person;
      person.pose_visibility = rng->Uniform(profile_.vis_lo, profile_.vis_hi);
      person.face_visible = rng->Bernoulli(profile_.p_face_given_person);
      if (person.face_visible) {
        person.face_quality = rng->Uniform(0.35, 1.0);
        person.emotion = emotion_dist_.Sample(rng);
        person.gender = rng->Bernoulli(0.5) ? 1 : 0;
      }
      person.hands_visible = rng->Bernoulli(profile_.p_hands_given_person);
      scene.persons.push_back(person);
    }
    // Action: mostly one of the scene's preferred actions; this is the
    // place<->action correlation the agent mines ("pub" -> drinking).
    if (rng->Bernoulli(profile_.p_action_given_person)) {
      const auto& preferred = scene_actions_[scene.scene_id];
      scene.action_id = rng->Bernoulli(0.75)
                            ? preferred[static_cast<size_t>(rng->UniformInt(
                                  0, static_cast<int>(preferred.size()) - 1))]
                            : rng->UniformInt(0, kNumActions - 1);
      scene.action_clarity = rng->Uniform(0.4, 1.0);
      // Manipulation-style actions expose hands more often.
      if (scene.action_id % 3 == 0) {
        for (auto& p : scene.persons) {
          if (!p.hands_visible && rng->Bernoulli(0.5)) p.hands_visible = true;
        }
      }
    }
  }

  // Dog (outdoor scenes are dog-friendlier).
  const double p_dog =
      profile_.p_dog * (scene.indoor ? 0.6 : 1.4);
  if (rng->Bernoulli(std::min(1.0, p_dog))) {
    scene.has_dog = true;
    scene.dog_breed = breed_dist_.Sample(rng);
    scene.dog_visibility = rng->Uniform(0.4, 1.0);
  }

  // Objects: person/dog categories when present, plus scene-preferred
  // categories (the place<->object correlation), plus occasional misc.
  auto add_object = [&](int category, double visibility) {
    if (std::find(scene.objects.begin(), scene.objects.end(), category) !=
        scene.objects.end()) {
      return;
    }
    scene.objects.push_back(category);
    scene.object_visibility.push_back(visibility);
  };
  if (scene.has_person()) {
    add_object(zoo::LabelSpace::kObjectPerson,
               rng->Uniform(profile_.vis_lo, profile_.vis_hi));
  }
  if (scene.has_dog && rng->Bernoulli(0.9)) {
    add_object(zoo::LabelSpace::kObjectDog, scene.dog_visibility);
  }
  const auto& preferred = scene_objects_[scene.scene_id];
  int extra = 0;
  // Poisson-ish: keep adding with decaying probability.
  double keep = profile_.object_rate / (profile_.object_rate + 1.0);
  while (extra < 6 && rng->Bernoulli(keep)) ++extra;
  for (int i = 0; i < extra; ++i) {
    const int category =
        rng->Bernoulli(0.7)
            ? preferred[static_cast<size_t>(
                  rng->UniformInt(0, static_cast<int>(preferred.size()) - 1))]
            : rng->UniformInt(1, kNumObjects - 1);
    add_object(category, rng->Uniform(profile_.vis_lo, profile_.vis_hi));
  }
  return scene;
}

}  // namespace ams::data
