#include "data/stream.h"

#include "util/check.h"

namespace ams::data {

DataStream::DataStream(const Dataset* dataset, std::vector<int> indices,
                       bool shuffle, uint64_t seed)
    : dataset_(dataset), order_(std::move(indices)) {
  AMS_CHECK(dataset != nullptr);
  AMS_CHECK(!order_.empty());
  if (shuffle) {
    util::Rng rng(util::HashCombine(seed, 0x57124Du));
    rng.Shuffle(&order_);
  }
}

int DataStream::Next() {
  AMS_CHECK(!Done(), "stream exhausted");
  const int item = order_[static_cast<size_t>(pos_++)];
  current_chunk_ = dataset_->item(item).chunk_id;
  return item;
}

}  // namespace ams::data
