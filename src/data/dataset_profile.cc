#include "data/dataset_profile.h"

namespace ams::data {

DatasetProfile DatasetProfile::MsCoco() {
  DatasetProfile p;
  p.name = "mscoco";
  p.p_person = 0.55;
  p.extra_person_rate = 0.5;
  p.p_face_given_person = 0.6;
  p.p_hands_given_person = 0.3;
  p.p_action_given_person = 0.7;
  p.p_dog = 0.14;
  p.object_rate = 3.2;
  p.scene_zipf_s = 0.7;
  p.indoor_bias = 0.5;
  p.profile_seed = 101;
  return p;
}

DatasetProfile DatasetProfile::Places365() {
  DatasetProfile p;
  p.name = "places365";
  p.p_person = 0.35;
  p.extra_person_rate = 0.3;
  p.p_face_given_person = 0.5;
  p.p_hands_given_person = 0.2;
  p.p_action_given_person = 0.55;
  p.p_dog = 0.06;
  p.object_rate = 1.8;
  p.scene_zipf_s = 0.35;  // broad scene coverage: near-uniform categories
  p.indoor_bias = 0.5;
  p.clarity_lo = 0.45;    // scene-centric photos are clearer scenes
  p.profile_seed = 202;
  return p;
}

DatasetProfile DatasetProfile::MirFlickr25() {
  DatasetProfile p;
  p.name = "mirflickr25";
  p.p_person = 0.62;
  p.extra_person_rate = 0.6;
  p.p_face_given_person = 0.8;   // social photos: faces front and centre
  p.p_hands_given_person = 0.35;
  p.p_action_given_person = 0.65;
  p.p_dog = 0.12;
  p.object_rate = 2.4;
  p.scene_zipf_s = 0.9;
  p.indoor_bias = 0.55;
  p.profile_seed = 303;
  return p;
}

DatasetProfile DatasetProfile::Stanford40() {
  DatasetProfile p;
  p.name = "stanford40";
  p.p_person = 0.97;             // action-recognition corpus
  p.extra_person_rate = 0.4;
  p.p_face_given_person = 0.65;
  p.p_hands_given_person = 0.55;  // many manipulation actions
  p.p_action_given_person = 0.95;
  p.p_dog = 0.08;
  p.object_rate = 1.9;
  p.scene_zipf_s = 0.9;
  p.indoor_bias = 0.45;
  p.vis_lo = 0.45;               // people are the subject: well visible
  p.profile_seed = 404;
  return p;
}

DatasetProfile DatasetProfile::Voc2012() {
  DatasetProfile p;
  p.name = "voc2012";
  p.p_person = 0.45;
  p.extra_person_rate = 0.35;
  p.p_face_given_person = 0.55;
  p.p_hands_given_person = 0.25;
  p.p_action_given_person = 0.6;
  p.p_dog = 0.18;                // animals prominent in VOC
  p.object_rate = 3.0;
  p.scene_zipf_s = 0.75;
  p.indoor_bias = 0.4;           // slightly outdoor-leaning
  p.profile_seed = 505;
  return p;
}

std::vector<DatasetProfile> DatasetProfile::AllProfiles() {
  return {MsCoco(), Places365(), MirFlickr25(), Stanford40(), Voc2012()};
}

DatasetProfile DatasetProfile::DogsOnly() {
  DatasetProfile p;
  p.name = "dogs_only";
  p.p_person = 0.02;
  p.p_face_given_person = 0.3;
  p.p_hands_given_person = 0.1;
  p.p_action_given_person = 0.2;
  p.p_dog = 1.0;
  p.object_rate = 1.2;
  p.scene_zipf_s = 1.0;
  p.indoor_bias = 0.25;
  p.profile_seed = 606;
  return p;
}

DatasetProfile DatasetProfile::ByName(const std::string& name,
                                      DatasetProfile fallback, bool* found) {
  for (const DatasetProfile& profile : AllProfiles()) {
    if (profile.name == name) {
      if (found != nullptr) *found = true;
      return profile;
    }
  }
  if (found != nullptr) *found = false;
  return fallback;
}

DatasetProfile DatasetProfile::ActionsOnly() {
  DatasetProfile p;
  p.name = "actions_only";
  p.p_person = 1.0;
  p.extra_person_rate = 0.5;
  p.p_face_given_person = 0.7;
  p.p_hands_given_person = 0.6;
  p.p_action_given_person = 1.0;
  p.p_dog = 0.0;
  p.object_rate = 1.5;
  p.scene_zipf_s = 1.0;
  p.indoor_bias = 0.5;
  p.profile_seed = 707;
  return p;
}

}  // namespace ams::data
