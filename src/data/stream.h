#ifndef AMS_DATA_STREAM_H_
#define AMS_DATA_STREAM_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace ams::data {

/// Iterates item indices of a dataset as an online stream. Supports the two
/// regimes of §I: uncorrelated (shuffled i.i.d. items) and chunked
/// (video-like segments arriving in order).
class DataStream {
 public:
  /// Streams `indices` (e.g. a dataset's test split). If `shuffle`, the order
  /// is randomized once with `seed`; chunked datasets should not shuffle so
  /// that chunk locality is preserved.
  DataStream(const Dataset* dataset, std::vector<int> indices, bool shuffle,
             uint64_t seed);

  bool Done() const { return pos_ >= static_cast<int>(order_.size()); }

  /// Returns the next item index and advances.
  int Next();

  /// Chunk id of the item most recently returned (-1 for i.i.d. data).
  int current_chunk() const { return current_chunk_; }

  void Reset() {
    pos_ = 0;
    current_chunk_ = -1;
  }

  int size() const { return static_cast<int>(order_.size()); }

 private:
  const Dataset* dataset_;
  std::vector<int> order_;
  int pos_ = 0;
  int current_chunk_ = -1;
};

}  // namespace ams::data

#endif  // AMS_DATA_STREAM_H_
