#ifndef AMS_DATA_DATASET_H_
#define AMS_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "data/dataset_profile.h"
#include "zoo/label_space.h"
#include "zoo/latent_scene.h"

namespace ams::data {

/// One generated data item ("image").
struct DataItem {
  int id = 0;
  zoo::LatentScene scene;
  /// Chunk id for correlated (video-like) datasets; -1 for i.i.d. data.
  int chunk_id = -1;
};

/// A generated corpus plus its deterministic train/test split.
class Dataset {
 public:
  /// Generates `num_items` i.i.d. items from the profile's generative model.
  static Dataset Generate(const DatasetProfile& profile,
                          const zoo::LabelSpace& labels, int num_items,
                          uint64_t seed);

  /// Generates a chunked, content-correlated stream (video-segment-like):
  /// `num_chunks` chunks of `chunk_len` items; items within a chunk share the
  /// base scene with per-frame jitter. Used by the §I explore–exploit case.
  static Dataset GenerateChunked(const DatasetProfile& profile,
                                 const zoo::LabelSpace& labels, int num_chunks,
                                 int chunk_len, uint64_t seed);

  const std::vector<DataItem>& items() const { return items_; }
  int size() const { return static_cast<int>(items_.size()); }
  const DataItem& item(int i) const { return items_[static_cast<size_t>(i)]; }
  const DatasetProfile& profile() const { return profile_; }

  /// Deterministic split (paper §VI-A uses train:test = 1:4).
  /// Every item lands in exactly one of the two index sets.
  const std::vector<int>& train_indices() const { return train_; }
  const std::vector<int>& test_indices() const { return test_; }

  bool chunked() const { return chunked_; }
  int num_chunks() const { return num_chunks_; }

 private:
  Dataset() = default;
  void Split(double train_fraction, uint64_t seed);

  DatasetProfile profile_;
  std::vector<DataItem> items_;
  std::vector<int> train_;
  std::vector<int> test_;
  bool chunked_ = false;
  int num_chunks_ = 0;
};

}  // namespace ams::data

#endif  // AMS_DATA_DATASET_H_
