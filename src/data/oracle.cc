#include "data/oracle.h"

#include <algorithm>

#include "util/check.h"

namespace ams::data {

Oracle::Oracle(const zoo::ModelZoo* zoo, const Dataset* dataset)
    : zoo_(zoo), dataset_(dataset) {
  AMS_CHECK(zoo != nullptr && dataset != nullptr);
  const int n = dataset->size();
  const int m = zoo->num_models();
  outputs_.resize(static_cast<size_t>(n));
  valuable_.resize(static_cast<size_t>(n));
  solo_value_.assign(static_cast<size_t>(n),
                     std::vector<double>(static_cast<size_t>(m), 0.0));
  exec_time_.assign(static_cast<size_t>(n),
                    std::vector<double>(static_cast<size_t>(m), 0.0));
  true_total_value_.assign(static_cast<size_t>(n), 0.0);
  label_profit_.resize(static_cast<size_t>(n));

  for (int i = 0; i < n; ++i) {
    const zoo::LatentScene& scene = dataset->item(i).scene;
    auto& per_model = outputs_[static_cast<size_t>(i)];
    auto& per_model_valuable = valuable_[static_cast<size_t>(i)];
    per_model.resize(static_cast<size_t>(m));
    per_model_valuable.resize(static_cast<size_t>(m));
    std::vector<std::pair<int, double>>& profits =
        label_profit_[static_cast<size_t>(i)];
    for (int j = 0; j < m; ++j) {
      per_model[static_cast<size_t>(j)] = zoo->Execute(j, scene);
      exec_time_[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          zoo->SampleExecutionTime(j, scene);
      double solo = 0.0;
      for (const auto& out : per_model[static_cast<size_t>(j)]) {
        if (out.confidence < zoo::kValuableConfidence) continue;
        per_model_valuable[static_cast<size_t>(j)].push_back(out);
        solo += out.confidence;
        auto it = std::find_if(profits.begin(), profits.end(),
                               [&](const auto& p) {
                                 return p.first == out.label_id;
                               });
        if (it == profits.end()) {
          profits.emplace_back(out.label_id, out.confidence);
        } else {
          it->second = std::max(it->second, out.confidence);
        }
      }
      solo_value_[static_cast<size_t>(i)][static_cast<size_t>(j)] = solo;
    }
    std::sort(profits.begin(), profits.end());
    double total = 0.0;
    for (const auto& p : profits) total += p.second;
    true_total_value_[static_cast<size_t>(i)] = total;
  }
}

const std::vector<zoo::LabelOutput>& Oracle::Output(int item, int model) const {
  return outputs_[static_cast<size_t>(item)][static_cast<size_t>(model)];
}

const std::vector<zoo::LabelOutput>& Oracle::ValuableOutput(int item,
                                                            int model) const {
  return valuable_[static_cast<size_t>(item)][static_cast<size_t>(model)];
}

bool Oracle::ModelValuable(int item, int model) const {
  return !ValuableOutput(item, model).empty();
}

double Oracle::ModelSoloValue(int item, int model) const {
  return solo_value_[static_cast<size_t>(item)][static_cast<size_t>(model)];
}

double Oracle::TrueTotalValue(int item) const {
  return true_total_value_[static_cast<size_t>(item)];
}

double Oracle::LabelProfit(int item, int label) const {
  const auto& profits = label_profit_[static_cast<size_t>(item)];
  auto it = std::lower_bound(
      profits.begin(), profits.end(), std::make_pair(label, 0.0),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it != profits.end() && it->first == label) return it->second;
  return 0.0;
}

int Oracle::NumValuableModels(int item) const {
  int count = 0;
  for (int j = 0; j < num_models(); ++j) {
    if (ModelValuable(item, j)) ++count;
  }
  return count;
}

double Oracle::ExecutionTime(int item, int model) const {
  return exec_time_[static_cast<size_t>(item)][static_cast<size_t>(model)];
}

double Oracle::ValuableTime(int item) const {
  double total = 0.0;
  for (int j = 0; j < num_models(); ++j) {
    if (ModelValuable(item, j)) total += ExecutionTime(item, j);
  }
  return total;
}

double Oracle::TotalTime(int item) const {
  double total = 0.0;
  for (int j = 0; j < num_models(); ++j) total += ExecutionTime(item, j);
  return total;
}

}  // namespace ams::data
