#ifndef AMS_DATA_SCENE_SAMPLER_H_
#define AMS_DATA_SCENE_SAMPLER_H_

#include <vector>

#include "data/dataset_profile.h"
#include "util/rng.h"
#include "zoo/label_space.h"
#include "zoo/latent_scene.h"

namespace ams::data {

/// Generates latent scenes for one dataset profile.
///
/// The sampler encodes the semantic correlations the DRL agent is supposed to
/// mine (§III-B): every scene category has a deterministic set of preferred
/// object categories and preferred actions (e.g., our "pub"-like scenes favour
/// cup/tv_monitor objects and drinking-style actions), persons imply faces
/// and actions, faces imply emotions/genders, manipulation actions imply
/// visible hands, and dogs imply the dog object category.
class SceneSampler {
 public:
  SceneSampler(const DatasetProfile& profile, const zoo::LabelSpace* labels);

  /// Samples one scene; `item_seed` must be unique per item (drives the
  /// deterministic execution noise downstream).
  zoo::LatentScene Sample(util::Rng* rng, uint64_t item_seed) const;

  const DatasetProfile& profile() const { return profile_; }

  /// Preferred object categories for a scene id (exposed for tests).
  const std::vector<int>& PreferredObjects(int scene_id) const;
  /// Preferred actions for a scene id (exposed for tests).
  const std::vector<int>& PreferredActions(int scene_id) const;

 private:
  DatasetProfile profile_;
  const zoo::LabelSpace* labels_;

  util::DiscreteDistribution scene_dist_;
  util::DiscreteDistribution breed_dist_;
  util::DiscreteDistribution emotion_dist_;
  // Per-scene preference tables (deterministic in scene id, shared across
  // all profiles so cross-dataset transfer can exploit them).
  std::vector<std::vector<int>> scene_objects_;
  std::vector<std::vector<int>> scene_actions_;
};

}  // namespace ams::data

#endif  // AMS_DATA_SCENE_SAMPLER_H_
