#include "data/dataset.h"

#include <algorithm>

#include "data/scene_sampler.h"
#include "util/check.h"
#include "util/rng.h"

namespace ams::data {

Dataset Dataset::Generate(const DatasetProfile& profile,
                          const zoo::LabelSpace& labels, int num_items,
                          uint64_t seed) {
  AMS_CHECK(num_items > 0);
  Dataset ds;
  ds.profile_ = profile;
  SceneSampler sampler(profile, &labels);
  util::Rng rng(util::HashCombine(seed, profile.profile_seed));
  ds.items_.reserve(static_cast<size_t>(num_items));
  for (int i = 0; i < num_items; ++i) {
    DataItem item;
    item.id = i;
    item.scene = sampler.Sample(&rng, util::HashCombine(seed, 0x17EAu + i));
    ds.items_.push_back(std::move(item));
  }
  ds.Split(/*train_fraction=*/0.2, seed);  // paper: 1:4 train:test
  return ds;
}

Dataset Dataset::GenerateChunked(const DatasetProfile& profile,
                                 const zoo::LabelSpace& labels, int num_chunks,
                                 int chunk_len, uint64_t seed) {
  AMS_CHECK(num_chunks > 0 && chunk_len > 0);
  Dataset ds;
  ds.profile_ = profile;
  ds.chunked_ = true;
  ds.num_chunks_ = num_chunks;
  SceneSampler sampler(profile, &labels);
  util::Rng rng(util::HashCombine(seed, profile.profile_seed ^ 0xC4u));
  int id = 0;
  for (int c = 0; c < num_chunks; ++c) {
    // Chunk base content; frames jitter around it.
    zoo::LatentScene base =
        sampler.Sample(&rng, util::HashCombine(seed, 0xBA5Eu + c));
    for (int f = 0; f < chunk_len; ++f) {
      DataItem item;
      item.id = id;
      item.chunk_id = c;
      zoo::LatentScene frame = base;
      frame.item_seed = util::HashCombine(seed, 0xF0A0u + id);
      // Per-frame jitter: visibilities wobble, rare content churn.
      frame.scene_clarity =
          std::clamp(base.scene_clarity + rng.Normal(0.0, 0.05), 0.05, 1.0);
      for (auto& p : frame.persons) {
        p.pose_visibility =
            std::clamp(p.pose_visibility + rng.Normal(0.0, 0.05), 0.05, 1.0);
        if (p.face_visible) {
          p.face_quality =
              std::clamp(p.face_quality + rng.Normal(0.0, 0.05), 0.05, 1.0);
        }
      }
      for (auto& v : frame.object_visibility) {
        v = std::clamp(v + rng.Normal(0.0, 0.05), 0.05, 1.0);
      }
      if (!frame.persons.empty() && rng.Bernoulli(0.03)) {
        frame.persons.pop_back();  // somebody walks out of frame
      }
      ds.items_.push_back({id, std::move(frame), c});
      ++id;
    }
  }
  ds.Split(/*train_fraction=*/0.2, seed);
  return ds;
}

void Dataset::Split(double train_fraction, uint64_t seed) {
  const int n = size();
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  util::Rng rng(util::HashCombine(seed, 0x5917u));
  rng.Shuffle(&order);
  const int train_count = std::max(1, static_cast<int>(n * train_fraction));
  train_.assign(order.begin(), order.begin() + train_count);
  test_.assign(order.begin() + train_count, order.end());
  std::sort(train_.begin(), train_.end());
  std::sort(test_.begin(), test_.end());
}

}  // namespace ams::data
