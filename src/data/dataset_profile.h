#ifndef AMS_DATA_DATASET_PROFILE_H_
#define AMS_DATA_DATASET_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ams::data {

/// Parameters of the latent-scene generative model for one synthetic corpus.
///
/// The five factory profiles stand in for the paper's five public datasets;
/// each skews the latent distributions the way the real corpora differ so
/// that content distribution shift (and thus the transfer experiments of
/// §VI-D) is reproduced.
struct DatasetProfile {
  std::string name;

  /// Probability that the scene contains at least one person.
  double p_person = 0.5;
  /// Geometric-tail parameter for additional persons (expected extras).
  double extra_person_rate = 0.4;
  double p_face_given_person = 0.7;
  double p_hands_given_person = 0.35;
  double p_action_given_person = 0.8;
  double p_dog = 0.12;
  /// Expected number of non-person, non-dog objects in the scene.
  double object_rate = 2.2;
  /// Zipf exponent for the scene-category distribution (higher = narrower).
  double scene_zipf_s = 0.8;
  /// Probability mass forced onto indoor scenes (0.5 = unbiased).
  double indoor_bias = 0.5;
  /// Base visibility range for persons/objects (uniform draw).
  double vis_lo = 0.35;
  double vis_hi = 1.0;
  /// Scene-clarity range; low clarity yields low-confidence place outputs.
  double clarity_lo = 0.2;
  double clarity_hi = 1.0;
  /// Seed permuting the profile's scene/action/breed preference tables so
  /// different corpora favour different categories.
  uint64_t profile_seed = 1;

  // ---- Factory profiles for the paper's five datasets (§VI-A) ----

  /// MSCOCO 2017: object-rich everyday scenes, persons common.
  static DatasetProfile MsCoco();
  /// Places365: scene-centric, fewer persons/objects, broad scene coverage.
  static DatasetProfile Places365();
  /// MirFlickr25: social photography — faces and people dominate.
  static DatasetProfile MirFlickr25();
  /// Stanford40: human-action photographs — persons ~always present.
  static DatasetProfile Stanford40();
  /// PASCAL VOC 2012: broad object categories incl. animals/vehicles.
  static DatasetProfile Voc2012();

  /// All five factory profiles in a fixed order.
  static std::vector<DatasetProfile> AllProfiles();

  /// The factory profile with the given name, or `fallback` when unknown
  /// (tools that must reject unknown names pass `found`). One lookup shared
  /// by every name-keyed tool/bench front end.
  static DatasetProfile ByName(const std::string& name,
                               DatasetProfile fallback = MsCoco(),
                               bool* found = nullptr);

  /// An intentionally degenerate profile (only dog photos, no persons) used
  /// by the transfer-limits ablation (§VI-D "extreme cases").
  static DatasetProfile DogsOnly();
  /// The opposite extreme: only human-action photos, no dogs.
  static DatasetProfile ActionsOnly();
};

}  // namespace ams::data

#endif  // AMS_DATA_DATASET_PROFILE_H_
