// Execution-plane throughput benchmark: labels one fixed stored workload
// through LabelingService under every combination of the plane's knobs —
// full vs lean kernel mode, scalar vs batched Q-prediction, and (for the
// fastest pair) the memoized replay cache — and emits a machine-readable
// BENCH_throughput.json baseline next to the human-readable table.
//
// Every configuration must produce identical labeling outcomes (summed
// recall and execution counts are asserted); the knobs trade only cost.
// The workload is Algorithm 2 (deadline + memory) driven by an untrained
// DQN-architecture agent: the forward-pass and materialization costs are
// those of a trained agent, while setup stays in milliseconds.

#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "nn/net.h"
#include "rl/agent.h"
#include "util/check.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace ams;

struct BenchConfig {
  std::string name;
  core::KernelMode kernel_mode;
  bool batched;
  bool cached_replay;
};

struct BenchResult {
  BenchConfig config;
  /// Best (minimum) wall time of any trial: robust against machine noise,
  /// the standard protocol for throughput benches on shared hardware.
  double wall_s = 0.0;
  double items_per_s = 0.0;
  double recall_sum = 0.0;
  long executions = 0;
};

void Run() {
  const int num_items = bench::EnvInt("AMS_BENCH_ITEMS", 400);
  const int repeats = bench::EnvInt("AMS_BENCH_REPEATS", 7);
  // <= 0: hardware concurrency (the builder resolves it).
  int workers = bench::EnvInt("AMS_BENCH_WORKERS", 0);
  if (workers <= 0) workers = util::ThreadPool::DefaultThreads();
  // Default to the densest-label profile: the more valuable labels a
  // workload yields, the more decision points and label-state growth per
  // item — the regime the execution-plane knobs exist for.
  const char* profile_env = std::getenv("AMS_BENCH_PROFILE");
  const std::string profile_name =
      profile_env != nullptr ? profile_env : "stanford40";

  zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const data::DatasetProfile profile =
      data::DatasetProfile::ByName(profile_name);
  data::Dataset dataset =
      data::Dataset::Generate(profile, zoo.labels(), num_items, /*seed=*/11);
  data::Oracle oracle(&zoo, &dataset);

  // Untrained agent with the paper's architecture: identical per-decision
  // cost to a trained one, deterministic decisions for free.
  const int hidden = bench::EnvInt("AMS_BENCH_HIDDEN", 256);
  const int depth = bench::EnvInt("AMS_BENCH_DEPTH", 1);
  nn::MlpConfig net_config;
  net_config.input_dim = zoo.labels().total_labels();
  net_config.hidden_dims.assign(static_cast<size_t>(depth), hidden);
  net_config.output_dim = zoo.num_models() + 1;
  rl::Agent agent(std::make_unique<nn::Mlp>(net_config, /*seed=*/5),
                  nn::NetKind::kMlp);

  core::ScheduleConstraints constraints;
  constraints.time_budget_s = bench::EnvInt("AMS_BENCH_DEADLINE_MS", 2000) / 1000.0;
  constraints.memory_budget_mb = bench::EnvInt("AMS_BENCH_MEM_MB", 8000);

  std::vector<core::WorkItem> work;
  work.reserve(static_cast<size_t>(num_items));
  for (int i = 0; i < num_items; ++i) {
    work.push_back(core::WorkItem::Stored(i));
  }

  const std::vector<BenchConfig> configs = {
      {"full_scalar", core::KernelMode::kFull, false, false},
      {"full_batched", core::KernelMode::kFull, true, false},
      {"lean_scalar", core::KernelMode::kLean, false, false},
      {"lean_batched", core::KernelMode::kLean, true, false},
      {"lean_batched_cached", core::KernelMode::kLean, true, true},
  };

  std::vector<std::unique_ptr<core::LabelingService>> services;
  std::vector<BenchResult> results;
  for (const BenchConfig& config : configs) {
    services.push_back(std::make_unique<core::LabelingService>(
        core::LabelingServiceBuilder(&zoo)
            .WithOracle(&oracle)
            .WithPredictor(&agent)
            .WithMode(core::ExecutionMode::kParallel)
            .WithConstraints(constraints)
            .WithKernelMode(config.kernel_mode)
            .WithBatchedPrediction(config.batched)
            .WithReplayCache(config.cached_replay)
            .WithWorkers(workers)
            .Build()));
    BenchResult result;
    result.config = config;
    result.wall_s = std::numeric_limits<double>::infinity();
    results.push_back(result);
    // Warm-up pass: touches every code path once (and fills the replay
    // cache, the regime the sweeps' repeated-budget replays live in).
    services.back()->SubmitBatch(work);
  }

  // Trials interleave the configurations round-robin so machine noise
  // (frequency drift, co-tenants) hits every config alike; each config
  // reports its best trial.
  for (int r = 0; r < repeats; ++r) {
    for (size_t c = 0; c < configs.size(); ++c) {
      BenchResult& result = results[c];
      const bool first_trial = r == 0;
      util::Timer timer;
      const std::vector<core::LabelOutcome> outcomes =
          services[c]->SubmitBatch(work);
      result.wall_s = std::min(result.wall_s, timer.ElapsedSeconds());
      if (first_trial) {
        for (const core::LabelOutcome& outcome : outcomes) {
          result.recall_sum += outcome.recall;
          result.executions += outcome.schedule.num_executions;
        }
      }
    }
  }
  for (BenchResult& result : results) {
    result.items_per_s = static_cast<double>(num_items) / result.wall_s;
  }

  // All configurations label identically: the knobs change cost, never
  // outcomes.
  for (const BenchResult& result : results) {
    AMS_CHECK(std::abs(result.recall_sum - results[0].recall_sum) < 1e-9,
              "config '" + result.config.name + "' changed recall");
    AMS_CHECK(result.executions == results[0].executions,
              "config '" + result.config.name + "' changed the schedule");
  }

  bench::Banner("Service throughput — execution-plane knobs (" +
                std::to_string(num_items) + " items, best of " +
                std::to_string(repeats) + " interleaved trials, " +
                std::to_string(workers) + " workers)");
  util::AsciiTable table;
  table.SetHeader({"config", "best wall (s)", "items/s", "speedup"});
  for (const BenchResult& result : results) {
    table.AddRow(result.config.name,
                 {result.wall_s, result.items_per_s,
                  result.items_per_s / results[0].items_per_s});
  }
  table.Print(std::cout);

  std::ofstream json("BENCH_throughput.json");
  AMS_CHECK(json.good(), "cannot open BENCH_throughput.json for writing");
  json << "{\n";
  json << "  \"workload\": {\"profile\": \"" << profile.name
       << "\", \"items\": " << num_items << ", \"repeats\": " << repeats
       << ", \"workers\": " << workers
       << ", \"models\": " << zoo.num_models()
       << ", \"labels\": " << zoo.labels().total_labels()
       << ", \"deadline_s\": " << constraints.time_budget_s
       << ", \"memory_mb\": " << constraints.memory_budget_mb << "},\n";
  json << "  \"configs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& result = results[i];
    json << "    {\"name\": \"" << result.config.name << "\", \"kernel_mode\": \""
         << (result.config.kernel_mode == core::KernelMode::kLean ? "lean"
                                                                  : "full")
         << "\", \"batched_prediction\": "
         << (result.config.batched ? "true" : "false")
         << ", \"replay_cache\": "
         << (result.config.cached_replay ? "true" : "false")
         << ", \"wall_s\": " << result.wall_s
         << ", \"items_per_s\": " << result.items_per_s
         << ", \"speedup_vs_full_scalar\": "
         << result.items_per_s / results[0].items_per_s << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote BENCH_throughput.json\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
