// Reproduces Fig. 2 and the §II data-driven analysis: the per-image time
// cost of obtaining all valuable labels under three policies — "no policy"
// (execute everything), "random policy" (random order until all valuable
// labels are recalled) and the ideal "optimal policy" (execute exactly the
// model executions that generate high-confidence output).
//
// Paper reference points: no policy 5.16 s, random 4.64 s, optimal 1.14 s
// (optimal = 22.1% of no policy).

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "eval/recall_curve.h"
#include "eval/world.h"
#include "sched/basic_policies.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace ams;  // bench binaries: brevity over hygiene

void Run() {
  eval::World world(eval::WorldConfig::FromEnv());
  bench::Banner(
      "Fig. 2 / Section II — time cost to obtain all valuable labels");

  // The paper pools MSCOCO 2017 + Places365 + MirFlickr25 (394,170 images).
  const std::vector<std::string> pool = {"mscoco", "places365", "mirflickr25"};
  std::vector<double> no_policy_times, random_times, optimal_times;

  for (const std::string& name : pool) {
    const int d = world.IndexOf(name);
    const data::Oracle& oracle = world.oracle(d);
    const std::vector<int> items = world.EvalItems(d);
    // No policy: every model runs.
    for (int item : items) {
      no_policy_times.push_back(oracle.TotalTime(item));
      optimal_times.push_back(oracle.ValuableTime(item));
    }
    // Random policy: random order until full value recall.
    const eval::FullRecallCosts random_costs = eval::ComputeFullRecallCosts(
        [] { return std::make_unique<sched::RandomPolicy>(1234); }, oracle,
        items);
    random_times.insert(random_times.end(), random_costs.time_s.begin(),
                        random_costs.time_s.end());
  }

  util::AsciiTable summary;
  summary.SetHeader({"policy", "avg time/image (s)", "paper (s)",
                     "fraction of no-policy"});
  const double no_avg = util::Mean(no_policy_times);
  const double rnd_avg = util::Mean(random_times);
  const double opt_avg = util::Mean(optimal_times);
  summary.AddRow("no_policy", {no_avg, 5.16, 1.0});
  summary.AddRow("random", {rnd_avg, 4.64, rnd_avg / no_avg});
  summary.AddRow("optimal", {opt_avg, 1.14, opt_avg / no_avg});
  summary.Print(std::cout);
  std::cout << "\noptimal policy saves "
            << util::FormatDouble(100.0 * (1.0 - opt_avg / no_avg), 1)
            << "% of computing cost (paper: 77.9%)\n";

  bench::Banner("Fig. 2 (right) — CDF of time cost per image");
  const std::vector<double> grid = bench::Grid(0.0, 6.0, 13);
  bench::PrintCdf("no_policy t", no_policy_times, grid);
  std::cout << '\n';
  bench::PrintCdf("random t", random_times, grid);
  std::cout << '\n';
  bench::PrintCdf("optimal t", optimal_times, grid);
}

}  // namespace

int main() {
  Run();
  return 0;
}
