// Q-forward kernel microbenchmark: the batched value prediction at the heart
// of every scheduling decision (rl::Agent::PredictValuesBatchTo), swept over
// batch size x input sparsity x hidden width at the serving shape (input =
// the zoo's label space, output = models + END), through three kernel paths:
//
//   fp32_scalar     the portable scalar kernels (simd::Tier::kScalar forced)
//   fp32_simd       the runtime-dispatched vector kernels (AVX2/NEON when
//                   the CPU has them; identical bits, fewer cycles)
//   int8_quantized  the frozen int8 snapshot (Agent::CloneQuantized)
//
// The first JSON config is fp32_scalar, so the gate's normalized throughput
// for the other paths IS their speedup over scalar — the number the SIMD
// dispatch and the quantized path exist to move. fp32_scalar vs fp32_simd is
// also a bitwise-parity spot check: both paths' outputs are compared on one
// grid point (the full lock lives in nn_simd_test).
//
// Emits BENCH_qforward.json for tools/bench_compare.py. Env knobs:
// AMS_BENCH_QF_REPEATS (best-of trials, default 5), AMS_BENCH_QF_ITERS
// (forward calls per trial per grid point, default 40).

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/predictor.h"
#include "nn/net.h"
#include "nn/simd.h"
#include "rl/agent.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"
#include "zoo/model_zoo.h"

namespace {

using namespace ams;

struct GridPoint {
  int hidden = 0;
  int batch = 0;
  int set_bits = 0;  // active (binary) features per row
};

struct PathTotals {
  double wall_s = 0.0;
  double rows = 0.0;
  double rows_per_s() const { return wall_s > 0.0 ? rows / wall_s : 0.0; }
};

/// One batch of sparse binary rows plus the index hints the serving path
/// always carries.
struct Workload {
  std::vector<std::vector<float>> rows;
  std::vector<std::vector<int>> indices;
  std::vector<const std::vector<float>*> row_ptrs;
  std::vector<const std::vector<int>*> index_ptrs;
};

Workload MakeWorkload(int batch, int input_dim, int set_bits, util::Rng* rng) {
  Workload w;
  w.rows.assign(static_cast<size_t>(batch),
                std::vector<float>(static_cast<size_t>(input_dim), 0.0f));
  w.indices.resize(static_cast<size_t>(batch));
  for (int r = 0; r < batch; ++r) {
    for (const int i : rng->SampleWithoutReplacement(input_dim, set_bits)) {
      w.rows[static_cast<size_t>(r)][static_cast<size_t>(i)] = 1.0f;
      w.indices[static_cast<size_t>(r)].push_back(i);
    }
  }
  for (int r = 0; r < batch; ++r) {
    w.row_ptrs.push_back(&w.rows[static_cast<size_t>(r)]);
    w.index_ptrs.push_back(&w.indices[static_cast<size_t>(r)]);
  }
  return w;
}

/// Best-of-`repeats` wall time for `iters` batched forwards.
double TimeForward(core::ModelValuePredictor* predictor, const Workload& w,
                   int iters, int repeats, std::vector<double>* out) {
  double best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    util::Timer timer;
    for (int it = 0; it < iters; ++it) {
      predictor->PredictValuesBatchTo(w.row_ptrs.data(), w.index_ptrs.data(),
                                      w.row_ptrs.size(), out->data());
    }
    const double wall = timer.ElapsedSeconds();
    if (rep == 0 || wall < best) best = wall;
  }
  return best;
}

}  // namespace

int main() {
  const int repeats = bench::EnvInt("AMS_BENCH_QF_REPEATS", 5);
  const int iters = bench::EnvInt("AMS_BENCH_QF_ITERS", 40);

  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const int input_dim = zoo.labels().total_labels();
  const int output_dim = zoo.num_models() + 1;

  bench::Banner("Q-forward kernels: scalar vs " +
                std::string(nn::simd::TierName(nn::simd::BestSupportedTier())) +
                " vs int8 (input " + std::to_string(input_dim) + ", output " +
                std::to_string(output_dim) + ")");

  const std::vector<GridPoint> grid = {
      {64, 1, 4},   {64, 16, 4},  {64, 64, 4},  {64, 64, 32},
      {256, 1, 4},  {256, 16, 4}, {256, 64, 4}, {256, 64, 32},
  };

  PathTotals scalar_total, simd_total, quant_total;
  util::AsciiTable table;
  table.SetHeader({"hidden", "batch", "bits", "scalar rows/s", "simd rows/s",
                   "int8 rows/s", "simd x", "int8 x"});

  bool parity_checked = false;
  for (const GridPoint& point : grid) {
    nn::MlpConfig config;
    config.input_dim = input_dim;
    config.hidden_dims = {point.hidden};
    config.output_dim = output_dim;
    rl::Agent agent(std::make_unique<nn::Mlp>(config, /*seed=*/17),
                    nn::NetKind::kMlp);

    util::Rng rng(static_cast<uint64_t>(point.hidden * 1000 + point.batch * 10 +
                                        point.set_bits));
    const Workload w = MakeWorkload(point.batch, input_dim, point.set_bits,
                                    &rng);
    std::vector<double> out(w.rows.size() * static_cast<size_t>(output_dim));
    std::vector<double> out_scalar(out.size());

    // Calibration for the int8 snapshot: the zero row plus this grid
    // point's own input rows (binary, so the input scale is exact).
    std::vector<std::vector<float>> calibration;
    calibration.emplace_back(static_cast<size_t>(input_dim), 0.0f);
    for (size_t r = 0; r < w.rows.size() && r < 16; ++r) {
      calibration.push_back(w.rows[r]);
    }
    std::unique_ptr<core::ModelValuePredictor> quantized =
        agent.CloneQuantized(calibration);
    AMS_CHECK(quantized != nullptr, "Mlp must have a quantized form");

    nn::simd::ForceTier(nn::simd::Tier::kScalar);
    const double scalar_wall =
        TimeForward(&agent, w, iters, repeats, &out_scalar);
    nn::simd::ResetForcedTier();
    const double simd_wall = TimeForward(&agent, w, iters, repeats, &out);

    if (!parity_checked) {
      // Spot check the bitwise lock across the dispatch boundary (the
      // exhaustive version is nn_simd_test).
      AMS_CHECK(std::memcmp(out.data(), out_scalar.data(),
                            out.size() * sizeof(double)) == 0,
                "SIMD forward diverged bitwise from scalar");
      parity_checked = true;
    }

    const double quant_wall = TimeForward(quantized.get(), w, iters, repeats,
                                          &out);

    const double rows = static_cast<double>(w.rows.size()) * iters;
    scalar_total.wall_s += scalar_wall;
    scalar_total.rows += rows;
    simd_total.wall_s += simd_wall;
    simd_total.rows += rows;
    quant_total.wall_s += quant_wall;
    quant_total.rows += rows;

    table.AddRow(std::to_string(point.hidden) + "/" +
                     std::to_string(point.batch) + "/" +
                     std::to_string(point.set_bits),
                 {static_cast<double>(point.batch),
                  static_cast<double>(point.set_bits), rows / scalar_wall,
                  rows / simd_wall, rows / quant_wall,
                  scalar_wall / simd_wall, scalar_wall / quant_wall});
  }
  table.Print(std::cout);

  const double simd_speedup = simd_total.rows_per_s() /
                              scalar_total.rows_per_s();
  const double quant_speedup = quant_total.rows_per_s() /
                               scalar_total.rows_per_s();
  std::cout << "\nactive tier: " << nn::simd::TierName(nn::simd::ActiveTier())
            << "\naggregate simd speedup vs scalar: " << simd_speedup
            << "\naggregate int8 speedup vs scalar: " << quant_speedup << "\n";

  std::ofstream json("BENCH_qforward.json");
  AMS_CHECK(json.good(), "cannot open BENCH_qforward.json for writing");
  json << "{\n";
  json << "  \"workload\": {\"input_dim\": " << input_dim
       << ", \"output_dim\": " << output_dim << ", \"grid_points\": "
       << grid.size() << ", \"iters\": " << iters << ", \"repeats\": "
       << repeats << ", \"active_tier\": \""
       << nn::simd::TierName(nn::simd::ActiveTier()) << "\"},\n";
  json << "  \"configs\": [\n";
  json << "    {\"name\": \"fp32_scalar\", \"wall_s\": " << scalar_total.wall_s
       << ", \"items_per_s\": " << scalar_total.rows_per_s()
       << ", \"speedup_vs_scalar\": 1},\n";
  json << "    {\"name\": \"fp32_simd\", \"wall_s\": " << simd_total.wall_s
       << ", \"items_per_s\": " << simd_total.rows_per_s()
       << ", \"speedup_vs_scalar\": " << simd_speedup << "},\n";
  json << "    {\"name\": \"int8_quantized\", \"wall_s\": "
       << quant_total.wall_s << ", \"items_per_s\": "
       << quant_total.rows_per_s() << ", \"speedup_vs_scalar\": "
       << quant_speedup << "}\n";
  json << "  ],\n";
  json << "  \"simd_speedup_vs_scalar\": " << simd_speedup << ",\n";
  json << "  \"int8_speedup_vs_scalar\": " << quant_speedup << "\n";
  json << "}\n";
  std::cout << "wrote BENCH_qforward.json\n";
  return 0;
}
