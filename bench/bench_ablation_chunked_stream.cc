// Ablation of the "simple case" of §I: when the stream is chunked and
// content-correlated (video segments), a plain exploration–exploitation
// policy — run everything on the first frames of a chunk, then only the
// models that paid off — should already perform near-optimally, no DRL
// needed. This bench measures it against random and optimal on a chunked
// stream.

#include <iostream>
#include <memory>

#include <array>
#include <numeric>

#include "bench/bench_util.h"
#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "data/stream.h"
#include "eval/world.h"
#include "util/table.h"
#include "zoo/model_zoo.h"

namespace {

using namespace ams;

void Run() {
  const eval::WorldConfig world_config = eval::WorldConfig::FromEnv();
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const int chunk_len = 25;
  const int num_chunks =
      std::max(4, world_config.items_per_dataset / chunk_len);
  const data::Dataset dataset = data::Dataset::GenerateChunked(
      data::DatasetProfile::MirFlickr25(), zoo.labels(), num_chunks, chunk_len,
      world_config.seed);
  const data::Oracle oracle(&zoo, &dataset);

  bench::Banner("Ablation (SI) — explore-exploit on a chunked stream (" +
                std::to_string(num_chunks) + " chunks x " +
                std::to_string(chunk_len) + " frames)");

  // Streaming sessions: the service keeps each chunk's frames on one worker
  // in arrival order, so the chunk knowledge builds up exactly as it would
  // online (while different chunks may run concurrently).
  auto run_policy = [&](const std::string& policy) {
    sched::PolicyOptions options;
    options.seed = 17;
    options.explore_items = 2;
    core::LabelingService service =
        core::LabelingServiceBuilder(&zoo)
            .WithOracle(&oracle)
            .WithMode(core::ExecutionMode::kSerial)
            .WithPolicy(policy, options)
            .WithRecallTarget(1.0)
            .WithKernelMode(core::KernelMode::kLean)  // counts/recall only
            .WithWorkers(1)  // numbers must not vary with the core count
            .Build();
    std::vector<int> indices(static_cast<size_t>(dataset.size()));
    std::iota(indices.begin(), indices.end(), 0);
    data::DataStream stream(&dataset, indices, /*shuffle=*/false, /*seed=*/1);
    double time_sum = 0.0, models_sum = 0.0, recall_sum = 0.0;
    service.Run(&stream, [&](const core::WorkItem&,
                             const core::LabelOutcome& outcome) {
      time_sum += outcome.schedule.makespan_s;
      models_sum += static_cast<double>(outcome.schedule.num_executions);
      recall_sum += outcome.recall;
    });
    const double n = static_cast<double>(dataset.size());
    return std::array<double, 3>{time_sum / n, models_sum / n,
                                 recall_sum / n};
  };

  util::AsciiTable table;
  table.SetHeader({"policy", "avg time/frame (s)", "avg models/frame",
                   "avg recall"});
  for (const char* policy : {"explore_exploit", "random", "optimal"}) {
    const auto r = run_policy(policy);
    table.AddRow(policy, {r[0], r[1], r[2]});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: explore-exploit pays full price on the "
               "first ~2 frames of each chunk and near-optimal price "
               "afterwards; its recall stays high because chunk content is "
               "correlated (SI: 'a simple exploration-exploitation solution "
               "works extremely well').\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
