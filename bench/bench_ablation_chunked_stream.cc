// Ablation of the "simple case" of §I: when the stream is chunked and
// content-correlated (video segments), a plain exploration–exploitation
// policy — run everything on the first frames of a chunk, then only the
// models that paid off — should already perform near-optimally, no DRL
// needed. This bench measures it against random and optimal on a chunked
// stream.

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "eval/world.h"
#include "sched/basic_policies.h"
#include "sched/explore_exploit.h"
#include "sched/serial_runner.h"
#include "util/table.h"
#include "zoo/model_zoo.h"

namespace {

using namespace ams;

void Run() {
  const eval::WorldConfig world_config = eval::WorldConfig::FromEnv();
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const int chunk_len = 25;
  const int num_chunks =
      std::max(4, world_config.items_per_dataset / chunk_len);
  const data::Dataset dataset = data::Dataset::GenerateChunked(
      data::DatasetProfile::MirFlickr25(), zoo.labels(), num_chunks, chunk_len,
      world_config.seed);
  const data::Oracle oracle(&zoo, &dataset);

  bench::Banner("Ablation (SI) — explore-exploit on a chunked stream (" +
                std::to_string(num_chunks) + " chunks x " +
                std::to_string(chunk_len) + " frames)");

  // Streams must be processed in order for the chunk knowledge to build up,
  // so this runs single-threaded per policy.
  auto run_policy = [&](sched::SchedulingPolicy* policy) {
    double time_sum = 0.0, models_sum = 0.0, recall_sum = 0.0;
    for (int item = 0; item < dataset.size(); ++item) {
      sched::SerialRunConfig config;
      config.recall_target = 1.0;
      const auto run = sched::RunSerial(policy, oracle, item, config,
                                        dataset.item(item).chunk_id);
      time_sum += run.time_used;
      models_sum += run.models_executed;
      recall_sum += run.recall;
    }
    const double n = static_cast<double>(dataset.size());
    return std::array<double, 3>{time_sum / n, models_sum / n,
                                 recall_sum / n};
  };

  util::AsciiTable table;
  table.SetHeader({"policy", "avg time/frame (s)", "avg models/frame",
                   "avg recall"});
  {
    sched::ExploreExploitPolicy policy(/*explore_items=*/2);
    const auto r = run_policy(&policy);
    table.AddRow("explore_exploit", {r[0], r[1], r[2]});
  }
  {
    sched::RandomPolicy policy(17);
    const auto r = run_policy(&policy);
    table.AddRow("random", {r[0], r[1], r[2]});
  }
  {
    sched::OptimalPolicy policy;
    const auto r = run_policy(&policy);
    table.AddRow("optimal", {r[0], r[1], r[2]});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: explore-exploit pays full price on the "
               "first ~2 frames of each chunk and near-optimal price "
               "afterwards; its recall stays high because chunk content is "
               "correlated (SI: 'a simple exploration-exploitation solution "
               "works extremely well').\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
