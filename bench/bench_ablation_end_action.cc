// Ablation of the END action (§IV-B): the paper adds a zero-reward END
// action so the agent can stop once all valuable labels are recalled, and
// reports that it "effectively quickens the velocity of convergence".
// This bench trains DuelingDQN agents with and without the END action and
// compares convergence speed and final training reward.

#include <iostream>

#include "bench/bench_util.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "eval/world.h"
#include "rl/trainer.h"
#include "util/table.h"
#include "zoo/model_zoo.h"

namespace {

using namespace ams;

// First episode index whose trailing 50-episode average reward clears the
// threshold; -1 if never.
int EpisodesToReach(const std::vector<double>& rewards, double threshold) {
  const size_t window = 50;
  for (size_t i = window; i <= rewards.size(); ++i) {
    double sum = 0.0;
    for (size_t j = i - window; j < i; ++j) sum += rewards[j];
    if (sum / static_cast<double>(window) >= threshold) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Run() {
  const eval::WorldConfig world_config = eval::WorldConfig::FromEnv();
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const data::Dataset dataset = data::Dataset::Generate(
      data::DatasetProfile::MsCoco(), zoo.labels(),
      world_config.items_per_dataset, world_config.seed);
  const data::Oracle oracle(&zoo, &dataset);

  bench::Banner(
      "Ablation (SIV-B) — END action on/off: convergence of DuelingDQN");
  util::AsciiTable table;
  table.SetHeader({"variant", "episodes to avg reward >= 0",
                   "final avg reward", "avg episode length (last 10%)"});
  for (const bool end_action : {true, false}) {
    rl::TrainConfig config;
    config.scheme = rl::DrlScheme::kDuelingDqn;
    config.hidden_dim = world_config.hidden_dim;
    config.episodes = world_config.train_episodes;
    config.eps_decay_steps = world_config.train_episodes * 4;
    config.enable_end_action = end_action;
    config.seed = world_config.seed;
    rl::AgentTrainer trainer(&oracle, config);
    rl::TrainStats stats;
    trainer.Train({}, &stats);
    const int to_zero = EpisodesToReach(stats.episode_rewards, 0.0);
    const size_t n = stats.episode_lengths.size();
    const size_t tail = std::max<size_t>(1, n / 10);
    double len = 0.0;
    for (size_t i = n - tail; i < n; ++i) len += stats.episode_lengths[i];
    len /= static_cast<double>(tail);
    table.AddRow({end_action ? "with END action" : "without END action",
                  to_zero < 0 ? "never" : std::to_string(to_zero),
                  util::FormatDouble(stats.final_avg_reward, 2),
                  util::FormatDouble(len, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nWithout END, every post-completion step is punished (-1), "
               "so episode rewards stay low and convergence stalls — the "
               "paper's §IV-B claim.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
