// Ablation of the transfer limits (§VI-D "Limitations"): the paper reports
// that training agents only on dog-related images and testing on human-
// action images (and vice versa) performs *worse than random* — transfer
// needs intersecting content distributions. This bench reproduces that
// extreme case with the DogsOnly / ActionsOnly profiles.

#include <iostream>
#include <memory>

#include "bench/agent_policies.h"
#include "bench/bench_util.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "eval/recall_curve.h"
#include "eval/world.h"
#include "rl/trainer.h"
#include "sched/basic_policies.h"
#include "util/stats.h"
#include "util/table.h"
#include "zoo/model_zoo.h"

namespace {

using namespace ams;

void Run() {
  const eval::WorldConfig world_config = eval::WorldConfig::FromEnv();
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();

  const data::Dataset dogs = data::Dataset::Generate(
      data::DatasetProfile::DogsOnly(), zoo.labels(),
      world_config.items_per_dataset, world_config.seed);
  const data::Dataset actions = data::Dataset::Generate(
      data::DatasetProfile::ActionsOnly(), zoo.labels(),
      world_config.items_per_dataset, world_config.seed + 1);
  const data::Oracle dogs_oracle(&zoo, &dogs);
  const data::Oracle actions_oracle(&zoo, &actions);

  auto train_on = [&](const data::Oracle* oracle) {
    rl::TrainConfig config;
    config.scheme = rl::DrlScheme::kDuelingDqn;
    config.hidden_dim = world_config.hidden_dim;
    config.episodes = world_config.train_episodes;
    config.eps_decay_steps = world_config.train_episodes * 4;
    config.seed = world_config.seed;
    rl::AgentTrainer trainer(oracle, config);
    return trainer.Train();
  };
  std::unique_ptr<rl::Agent> dog_agent = train_on(&dogs_oracle);
  std::unique_ptr<rl::Agent> action_agent = train_on(&actions_oracle);

  auto evaluate = [&](rl::Agent* agent, const data::Oracle& oracle,
                      const data::Dataset& dataset) {
    std::vector<int> items = dataset.test_indices();
    items.resize(std::min<size_t>(
        items.size(), static_cast<size_t>(world_config.eval_items)));
    const eval::FullRecallCosts agent_costs = eval::ComputeFullRecallCosts(
        bench::QGreedyFactory(agent), oracle, items);
    const eval::FullRecallCosts random_costs = eval::ComputeFullRecallCosts(
        [] { return std::make_unique<sched::RandomPolicy>(3); }, oracle,
        items);
    return std::pair<double, double>{util::Mean(agent_costs.time_s),
                                     util::Mean(random_costs.time_s)};
  };

  bench::Banner(
      "Ablation (SVI-D limitations) — transfer across disjoint content "
      "distributions");
  util::AsciiTable table;
  table.SetHeader({"agent -> test set", "agent time (s)", "random time (s)",
                   "verdict"});
  struct Case {
    const char* name;
    rl::Agent* agent;
    const data::Oracle* oracle;
    const data::Dataset* dataset;
  };
  const Case cases[] = {
      {"dogs_only -> dogs_only", dog_agent.get(), &dogs_oracle, &dogs},
      {"dogs_only -> actions_only", dog_agent.get(), &actions_oracle,
       &actions},
      {"actions_only -> actions_only", action_agent.get(), &actions_oracle,
       &actions},
      {"actions_only -> dogs_only", action_agent.get(), &dogs_oracle, &dogs},
  };
  for (const Case& c : cases) {
    const auto [agent_time, random_time] = evaluate(c.agent, *c.oracle,
                                                    *c.dataset);
    table.AddRow({c.name, util::FormatDouble(agent_time, 2),
                  util::FormatDouble(random_time, 2),
                  agent_time < random_time * 0.95 ? "transfers"
                                                  : "does NOT transfer"});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: strong savings on the in-distribution "
               "diagonal, little or none across — matching the paper's "
               "'worse model scheduling than the random policy' caveat for "
               "disjoint content.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
