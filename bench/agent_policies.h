#ifndef AMS_BENCH_AGENT_POLICIES_H_
#define AMS_BENCH_AGENT_POLICIES_H_

#include <memory>

#include "eval/recall_curve.h"
#include "rl/agent.h"
#include "sched/basic_policies.h"
#include "sched/cost_q_greedy.h"

namespace ams::bench {

/// Q-greedy policy owning a private agent clone (nets cache activations and
/// are not thread-safe, so evaluation threads each get their own copy).
struct OwnedQGreedy : sched::QGreedyPolicy {
  explicit OwnedQGreedy(std::unique_ptr<rl::Agent> a)
      : sched::QGreedyPolicy(a.get()), agent(std::move(a)) {}
  std::unique_ptr<rl::Agent> agent;
};

/// Algorithm-1 policy owning a private agent clone.
struct OwnedCostQGreedy : sched::CostQGreedyPolicy {
  explicit OwnedCostQGreedy(std::unique_ptr<rl::Agent> a)
      : sched::CostQGreedyPolicy(a.get()), agent(std::move(a)) {}
  std::unique_ptr<rl::Agent> agent;
};

inline eval::PolicyFactory QGreedyFactory(rl::Agent* agent) {
  return [agent] { return std::make_unique<OwnedQGreedy>(agent->Clone()); };
}

inline eval::PolicyFactory CostQGreedyFactory(rl::Agent* agent) {
  return [agent] { return std::make_unique<OwnedCostQGreedy>(agent->Clone()); };
}

}  // namespace ams::bench

#endif  // AMS_BENCH_AGENT_POLICIES_H_
