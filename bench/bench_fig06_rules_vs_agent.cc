// Reproduces Fig. 6 (§VI-C): handcrafted execution rules vs the DuelingDQN
// agent, the random policy and the optimal policy on MSCOCO 2017 — average
// number of executed models (left) and average execution time (right) vs the
// required recall of output value.
//
// Paper reference points: the rule-based policy saves only 22.6% executions /
// 20.1% time at 0.8 recall (2.1% / 1.4% at 1.0 recall) vs random, while
// DuelingDQN saves far more — handcrafted rules barely help at scale.

#include <iostream>
#include <memory>

#include "bench/agent_policies.h"
#include "bench/bench_util.h"
#include "eval/agent_cache.h"
#include "eval/recall_curve.h"
#include "eval/world.h"
#include "sched/basic_policies.h"
#include "sched/rule_based.h"
#include "util/table.h"

namespace {

using namespace ams;

void Run() {
  eval::World world(eval::WorldConfig::FromEnv());
  eval::AgentCache cache;

  const int d = world.IndexOf("mscoco");
  const data::Oracle& oracle = world.oracle(d);
  const std::vector<int> items = world.EvalItems(d);

  eval::AgentRequest request;
  request.key = world.CacheKey("mscoco", "dueling");
  request.oracle = &oracle;
  request.config = world.BaseTrainConfig();
  request.config.scheme = rl::DrlScheme::kDuelingDqn;
  std::unique_ptr<rl::Agent> agent = cache.GetOrTrain(request);

  const std::vector<double> thresholds = eval::DefaultThresholds();
  std::vector<eval::RecallCurve> curves;
  curves.push_back(eval::ComputeRecallCurve(
      [] {
        return std::make_unique<sched::RuleBasedPolicy>(sched::DefaultRules(),
                                                        4242);
      },
      oracle, items, thresholds));
  {
    eval::RecallCurve curve = eval::ComputeRecallCurve(
        bench::QGreedyFactory(agent.get()), oracle, items, thresholds);
    curve.policy_name = "dueling_dqn";
    curves.push_back(std::move(curve));
  }
  curves.push_back(eval::ComputeRecallCurve(
      [] { return std::make_unique<sched::RandomPolicy>(77); }, oracle, items,
      thresholds));
  curves.push_back(eval::ComputeRecallCurve(
      [] { return std::make_unique<sched::OptimalPolicy>(); }, oracle, items,
      thresholds));

  std::vector<std::string> header = {"recall"};
  for (const auto& curve : curves) header.push_back(curve.policy_name);

  bench::Banner("Fig. 6 (left) — avg number of executed models, MSCOCO 2017");
  util::AsciiTable models;
  models.SetHeader(header);
  for (size_t k = 0; k < thresholds.size(); ++k) {
    std::vector<double> row;
    for (const auto& curve : curves) row.push_back(curve.avg_models[k]);
    models.AddRow(util::FormatDouble(thresholds[k], 1), row, 2);
  }
  models.Print(std::cout);

  bench::Banner("Fig. 6 (right) — avg model execution time (s), MSCOCO 2017");
  util::AsciiTable times;
  times.SetHeader(header);
  for (size_t k = 0; k < thresholds.size(); ++k) {
    std::vector<double> row;
    for (const auto& curve : curves) row.push_back(curve.avg_time_s[k]);
    times.AddRow(util::FormatDouble(thresholds[k], 1), row, 3);
  }
  times.Print(std::cout);

  auto saving = [](const eval::RecallCurve& a, const eval::RecallCurve& b,
                   size_t k) {
    return 100.0 * (1.0 - a.avg_models[k] / b.avg_models[k]);
  };
  std::cout << "\nvs random at recall 0.8: rules save "
            << util::FormatDouble(saving(curves[0], curves[2], 7), 1)
            << "% executions (paper: 22.6%), DuelingDQN saves "
            << util::FormatDouble(saving(curves[1], curves[2], 7), 1)
            << "% (paper: 44.1-60.6%)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
