// Serving-runtime throughput benchmark: labels one fixed stored workload
// twice at equal worker counts — through the closed-loop batch entry point
// (LabelingService::SubmitBatch) and through the asynchronous
// serve::ServerRuntime (enqueue everything, Drain) — and emits a
// machine-readable BENCH_serve.json baseline next to the human-readable
// table. The serve runtime must sustain at least SubmitBatch throughput:
// its workers multiplex a continuously refilled resident set (no end-of-wave
// stragglers, queue-balanced instead of statically partitioned), which is
// what pays for the queue/future overhead per item.
//
// Both paths must label identically (summed recall and execution counts are
// asserted): the runtime changes scheduling cost, never outcomes. The
// workload is Algorithm 2 (deadline + memory) driven by an untrained
// DQN-architecture agent, as in bench_service_throughput.
//
// A third scenario replays the same workload through the runtime with a
// seeded 20/60/20 interactive/standard/batch priority-class mix: classes
// reorder admission (weighted round-robin between bands) but items are
// independent, so the label results must again be identical, and the
// mixed-class throughput must stay within noise of the single-class run —
// the multi-tenant scheduler's bookkeeping is a few integer ops per pop.
//
// A fourth scenario replays the workload as a skewed tenant mix (4 tenants,
// ~70/10/10/10 seeded shares) under per-tenant queued quotas (kBlock
// backpressure, so nothing is dropped and the outcome assertions still
// hold) with value-density within-class ordering — the full paper-aware
// multi-tenant admission path: ProfileValueEstimator scoring at enqueue,
// density-ordered bands, tenant accounting on every pop. Its throughput is
// reported relative to the plain serve run (quota backpressure on the
// enqueue thread costs a little; the ordering itself is one linear band
// scan per pop).
//
// The next two scenarios measure the sharded routing front end at equal
// total worker counts: "serve_equal_workers" is a single runtime with
// 4 * max(1, workers/4) workers, and "route_sharded_4" is a
// route::ShardRouter over 4 shard runtimes of max(1, workers/4) workers
// each (consistent-hash placement, no rebalance tick — a closed burst over
// a uniform corpus is already balanced). The router must hold at least
// 0.9x the equal-worker single runtime (route_vs_equal_serve_ratio in the
// JSON): per-request routing is one ring lookup, and sharding the queue
// can only cost where placement leaves a shard idle at the tail.
//
// The last scenario, "route_coalesced_4", is the same 4-shard router with
// cross-shard Q-forward coalescing enabled (RouterOptions
// serve.coalesce_forwards): every worker's stale Q-slot gather joins one
// cluster-wide rendezvous, duplicate label states dedup across shards, and
// a single batched forward serves the whole round. Outcomes must again be
// bitwise-identical to SubmitBatch (coalescing changes where the forward
// runs, never what it computes); the JSON reports coalesced_vs_sharded so
// the rendezvous overhead vs dedup payoff is tracked by the bench gate.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "nn/net.h"
#include "rl/agent.h"
#include "route/shard_router.h"
#include "serve/server_runtime.h"
#include "util/check.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace ams;

struct BenchResult {
  std::string name;
  /// Best (minimum) wall time of any trial: robust against machine noise,
  /// the standard protocol for throughput benches on shared hardware.
  double wall_s = std::numeric_limits<double>::infinity();
  double items_per_s = 0.0;
  double recall_sum = 0.0;
  long executions = 0;
};

void Run() {
  const int num_items = bench::EnvInt("AMS_BENCH_ITEMS", 400);
  const int repeats = bench::EnvInt("AMS_BENCH_REPEATS", 7);
  int workers = bench::EnvInt("AMS_BENCH_WORKERS", 2);
  if (workers <= 0) workers = util::ThreadPool::DefaultThreads();
  const char* profile_env = std::getenv("AMS_BENCH_PROFILE");
  const data::DatasetProfile profile = data::DatasetProfile::ByName(
      profile_env != nullptr ? profile_env : "stanford40");

  zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  data::Dataset dataset =
      data::Dataset::Generate(profile, zoo.labels(), num_items, /*seed=*/11);
  data::Oracle oracle(&zoo, &dataset);

  const int hidden = bench::EnvInt("AMS_BENCH_HIDDEN", 256);
  nn::MlpConfig net_config;
  net_config.input_dim = zoo.labels().total_labels();
  net_config.hidden_dims = {hidden};
  net_config.output_dim = zoo.num_models() + 1;
  rl::Agent agent(std::make_unique<nn::Mlp>(net_config, /*seed=*/5),
                  nn::NetKind::kMlp);

  core::ScheduleConstraints constraints;
  constraints.time_budget_s = bench::EnvInt("AMS_BENCH_DEADLINE_MS", 2000) / 1000.0;
  constraints.memory_budget_mb = bench::EnvInt("AMS_BENCH_MEM_MB", 8000);

  std::vector<core::WorkItem> work;
  work.reserve(static_cast<size_t>(num_items));
  for (int i = 0; i < num_items; ++i) {
    work.push_back(core::WorkItem::Stored(i));
  }

  // Both paths run the identical session configuration: lean kernel (the
  // recall-accounting serving regime) with batched prediction.
  const auto build_session = [&](int session_workers) {
    return core::LabelingServiceBuilder(&zoo)
        .WithOracle(&oracle)
        .WithPredictor(&agent)
        .WithMode(core::ExecutionMode::kParallel)
        .WithConstraints(constraints)
        .WithKernelMode(core::KernelMode::kLean)
        .WithBatchedPrediction(true)
        .WithWorkers(session_workers)
        .Build();
  };
  core::LabelingService batch_session = build_session(workers);
  core::LabelingService serve_session = build_session(workers);
  core::LabelingService mixed_session = build_session(workers);
  core::LabelingService tenant_session = build_session(workers);

  // The sharded comparison holds total workers equal: one runtime with
  // kShards * per-shard workers vs a router over kShards runtimes.
  const int kShards = 4;
  const int per_shard_workers = std::max(1, workers / kShards);
  const int equal_workers = kShards * per_shard_workers;
  core::LabelingService equal_session = build_session(equal_workers);
  std::vector<core::LabelingService> shard_sessions;
  shard_sessions.reserve(static_cast<size_t>(kShards));
  for (int s = 0; s < kShards; ++s) {
    shard_sessions.push_back(build_session(per_shard_workers));
  }
  std::vector<core::LabelingService> coalesced_sessions;
  coalesced_sessions.reserve(static_cast<size_t>(kShards));
  for (int s = 0; s < kShards; ++s) {
    coalesced_sessions.push_back(build_session(per_shard_workers));
  }

  serve::ServeOptions serve_options;
  serve_options.workers = workers;
  serve_options.queue_capacity = num_items;  // closed burst fits entirely
  serve_options.overload = serve::OverloadPolicy::kBlock;
  serve_options.max_resident_per_worker =
      bench::EnvInt("AMS_BENCH_RESIDENT", serve_options.max_resident_per_worker);
  serve::ServerRuntime runtime(&serve_session, serve_options);
  serve::ServerRuntime mixed_runtime(&mixed_session, serve_options);

  // The skewed-tenant scenario: value-density ordering plus per-tenant
  // queued quotas under kBlock (backpressure, never drops — the outcome
  // assertions stay exact).
  serve::ServeOptions tenant_options = serve_options;
  tenant_options.within_class_order = serve::WithinClassOrder::kValueDensity;
  serve::TenantQuota tenant_quota;
  tenant_quota.max_queued = std::max(8, num_items / 8);
  tenant_options.tenant_quotas.default_quota = tenant_quota;
  serve::ServerRuntime tenant_runtime(&tenant_session, tenant_options);

  serve::ServeOptions equal_options = serve_options;
  equal_options.workers = equal_workers;
  serve::ServerRuntime equal_runtime(&equal_session, equal_options);

  route::RouterOptions router_options;
  router_options.serve = serve_options;
  router_options.serve.workers = per_shard_workers;
  std::vector<core::LabelingService*> shard_session_ptrs;
  for (core::LabelingService& session : shard_sessions) {
    shard_session_ptrs.push_back(&session);
  }
  route::ShardRouter router(shard_session_ptrs, router_options);

  route::RouterOptions coalesced_options = router_options;
  coalesced_options.serve.coalesce_forwards = true;
  std::vector<core::LabelingService*> coalesced_session_ptrs;
  for (core::LabelingService& session : coalesced_sessions) {
    coalesced_session_ptrs.push_back(&session);
  }
  route::ShardRouter coalesced_router(coalesced_session_ptrs,
                                      coalesced_options);

  // Seeded 20/60/20 class assignment, fixed across trials.
  std::vector<serve::PriorityClass> mixed_classes;
  mixed_classes.reserve(work.size());
  {
    std::mt19937_64 class_rng(17);
    std::discrete_distribution<int> class_of({2.0, 6.0, 2.0});
    for (size_t i = 0; i < work.size(); ++i) {
      mixed_classes.push_back(
          static_cast<serve::PriorityClass>(class_of(class_rng)));
    }
  }
  // Seeded ~70/10/10/10 tenant assignment, fixed across trials.
  std::vector<int> tenant_ids;
  tenant_ids.reserve(work.size());
  {
    std::mt19937_64 tenant_rng(23);
    std::discrete_distribution<int> tenant_of({7.0, 1.0, 1.0, 1.0});
    for (size_t i = 0; i < work.size(); ++i) {
      tenant_ids.push_back(tenant_of(tenant_rng));
    }
  }

  BenchResult batch_result;
  batch_result.name = "submit_batch";
  BenchResult serve_result;
  serve_result.name = "serve_runtime";
  BenchResult mixed_result;
  mixed_result.name = "serve_runtime_mixed";
  BenchResult tenant_result;
  tenant_result.name = "serve_runtime_tenants";
  BenchResult equal_result;
  equal_result.name = "serve_equal_workers";
  BenchResult route_result;
  route_result.name = "route_sharded_4";
  BenchResult coalesced_result;
  coalesced_result.name = "route_coalesced_4";

  const auto run_batch = [&](bool record) {
    util::Timer timer;
    const std::vector<core::LabelOutcome> outcomes =
        batch_session.SubmitBatch(work);
    const double wall = timer.ElapsedSeconds();
    if (!record) return;
    batch_result.wall_s = std::min(batch_result.wall_s, wall);
    if (batch_result.executions == 0) {
      for (const core::LabelOutcome& outcome : outcomes) {
        batch_result.recall_sum += outcome.recall;
        batch_result.executions += outcome.schedule.num_executions;
      }
    }
  };
  enum class ServeMode { kPlain, kMixedClasses, kTenants };
  const auto run_serve = [&](serve::ServerRuntime* target,
                             BenchResult* result_out, ServeMode mode,
                             bool record) {
    std::vector<std::future<serve::ServeResult>> futures;
    futures.reserve(work.size());
    util::Timer timer;
    for (size_t i = 0; i < work.size(); ++i) {
      switch (mode) {
        case ServeMode::kPlain:
          futures.push_back(target->Enqueue(work[i]));
          break;
        case ServeMode::kMixedClasses:
          futures.push_back(target->Enqueue(work[i], mixed_classes[i]));
          break;
        case ServeMode::kTenants: {
          serve::ServerRuntime::RequestOptions request;
          request.tenant_id = tenant_ids[i];
          futures.push_back(target->Enqueue(work[i], request));
          break;
        }
      }
    }
    target->Drain();
    const double wall = timer.ElapsedSeconds();
    if (!record) return;
    result_out->wall_s = std::min(result_out->wall_s, wall);
    if (result_out->executions == 0) {
      for (std::future<serve::ServeResult>& future : futures) {
        const serve::ServeResult result = future.get();
        AMS_CHECK(result.ok(), "closed-burst serve run dropped an item");
        result_out->recall_sum += result.outcome.recall;
        result_out->executions += result.outcome.schedule.num_executions;
      }
    }
  };

  const auto run_route = [&](route::ShardRouter* target,
                             BenchResult* result_out, bool record) {
    std::vector<std::future<serve::ServeResult>> futures;
    futures.reserve(work.size());
    util::Timer timer;
    for (const core::WorkItem& item : work) {
      futures.push_back(target->Enqueue(item));
    }
    target->Drain();
    const double wall = timer.ElapsedSeconds();
    if (!record) return;
    result_out->wall_s = std::min(result_out->wall_s, wall);
    if (result_out->executions == 0) {
      for (std::future<serve::ServeResult>& future : futures) {
        const serve::ServeResult result = future.get();
        AMS_CHECK(result.ok(), "closed-burst routed run dropped an item");
        result_out->recall_sum += result.outcome.recall;
        result_out->executions += result.outcome.schedule.num_executions;
      }
    }
  };

  // Warm-up every path (predictor clone pools, allocator), then interleave
  // trials so machine noise hits all alike; each reports its best trial.
  run_batch(false);
  run_serve(&runtime, &serve_result, ServeMode::kPlain, false);
  run_serve(&mixed_runtime, &mixed_result, ServeMode::kMixedClasses, false);
  run_serve(&tenant_runtime, &tenant_result, ServeMode::kTenants, false);
  run_serve(&equal_runtime, &equal_result, ServeMode::kPlain, false);
  run_route(&router, &route_result, false);
  run_route(&coalesced_router, &coalesced_result, false);
  for (int r = 0; r < repeats; ++r) {
    run_batch(true);
    run_serve(&runtime, &serve_result, ServeMode::kPlain, true);
    run_serve(&mixed_runtime, &mixed_result, ServeMode::kMixedClasses, true);
    run_serve(&tenant_runtime, &tenant_result, ServeMode::kTenants, true);
    run_serve(&equal_runtime, &equal_result, ServeMode::kPlain, true);
    run_route(&router, &route_result, true);
    run_route(&coalesced_router, &coalesced_result, true);
  }
  batch_result.items_per_s =
      static_cast<double>(num_items) / batch_result.wall_s;
  serve_result.items_per_s =
      static_cast<double>(num_items) / serve_result.wall_s;
  mixed_result.items_per_s =
      static_cast<double>(num_items) / mixed_result.wall_s;
  tenant_result.items_per_s =
      static_cast<double>(num_items) / tenant_result.wall_s;
  equal_result.items_per_s =
      static_cast<double>(num_items) / equal_result.wall_s;
  route_result.items_per_s =
      static_cast<double>(num_items) / route_result.wall_s;
  coalesced_result.items_per_s =
      static_cast<double>(num_items) / coalesced_result.wall_s;

  AMS_CHECK(std::abs(serve_result.recall_sum - batch_result.recall_sum) < 1e-9,
            "serve runtime changed recall vs SubmitBatch");
  AMS_CHECK(serve_result.executions == batch_result.executions,
            "serve runtime changed the schedules vs SubmitBatch");
  AMS_CHECK(std::abs(mixed_result.recall_sum - batch_result.recall_sum) < 1e-9,
            "priority classes changed recall vs SubmitBatch");
  AMS_CHECK(mixed_result.executions == batch_result.executions,
            "priority classes changed the schedules vs SubmitBatch");
  AMS_CHECK(std::abs(tenant_result.recall_sum - batch_result.recall_sum) <
                1e-9,
            "tenant quotas / value ordering changed recall vs SubmitBatch");
  AMS_CHECK(tenant_result.executions == batch_result.executions,
            "tenant quotas / value ordering changed the schedules");
  AMS_CHECK(std::abs(equal_result.recall_sum - batch_result.recall_sum) <
                1e-9,
            "equal-worker serve runtime changed recall vs SubmitBatch");
  AMS_CHECK(equal_result.executions == batch_result.executions,
            "equal-worker serve runtime changed the schedules");
  AMS_CHECK(std::abs(route_result.recall_sum - batch_result.recall_sum) <
                1e-9,
            "sharded routing changed recall vs SubmitBatch");
  AMS_CHECK(route_result.executions == batch_result.executions,
            "sharded routing changed the schedules vs SubmitBatch");
  AMS_CHECK(std::abs(coalesced_result.recall_sum - batch_result.recall_sum) <
                1e-9,
            "cross-shard forward coalescing changed recall vs SubmitBatch");
  AMS_CHECK(coalesced_result.executions == batch_result.executions,
            "cross-shard forward coalescing changed the schedules");

  const double ratio = serve_result.items_per_s / batch_result.items_per_s;
  const double mixed_ratio =
      mixed_result.items_per_s / batch_result.items_per_s;
  const double tenant_ratio =
      tenant_result.items_per_s / batch_result.items_per_s;
  const double equal_ratio =
      equal_result.items_per_s / batch_result.items_per_s;
  const double route_ratio =
      route_result.items_per_s / batch_result.items_per_s;
  const double route_vs_equal =
      route_result.items_per_s / equal_result.items_per_s;
  const double coalesced_ratio =
      coalesced_result.items_per_s / batch_result.items_per_s;
  const double coalesced_vs_sharded =
      coalesced_result.items_per_s / route_result.items_per_s;
  bench::Banner("Serve runtime vs SubmitBatch (" + std::to_string(num_items) +
                " items, best of " + std::to_string(repeats) +
                " interleaved trials, " + std::to_string(workers) +
                " workers)");
  util::AsciiTable table;
  table.SetHeader({"path", "best wall (s)", "items/s", "vs submit_batch"});
  table.AddRow(batch_result.name,
               {batch_result.wall_s, batch_result.items_per_s, 1.0});
  table.AddRow(serve_result.name,
               {serve_result.wall_s, serve_result.items_per_s, ratio});
  table.AddRow(mixed_result.name,
               {mixed_result.wall_s, mixed_result.items_per_s, mixed_ratio});
  table.AddRow(tenant_result.name,
               {tenant_result.wall_s, tenant_result.items_per_s,
                tenant_ratio});
  table.AddRow(equal_result.name,
               {equal_result.wall_s, equal_result.items_per_s, equal_ratio});
  table.AddRow(route_result.name,
               {route_result.wall_s, route_result.items_per_s, route_ratio});
  table.AddRow(coalesced_result.name,
               {coalesced_result.wall_s, coalesced_result.items_per_s,
                coalesced_ratio});
  table.Print(std::cout);
  std::cout << "route_sharded_4 vs serve_equal_workers (" << kShards
            << " shards x " << per_shard_workers << " workers vs 1 x "
            << equal_workers << "): " << route_vs_equal << "\n";
  std::cout << "route_coalesced_4 vs route_sharded_4 (cross-shard forward "
            << "coalescing on vs off): " << coalesced_vs_sharded << "\n";

  std::ofstream json("BENCH_serve.json");
  AMS_CHECK(json.good(), "cannot open BENCH_serve.json for writing");
  json << "{\n";
  json << "  \"workload\": {\"profile\": \"" << profile.name
       << "\", \"items\": " << num_items << ", \"repeats\": " << repeats
       << ", \"workers\": " << workers << ", \"models\": " << zoo.num_models()
       << ", \"labels\": " << zoo.labels().total_labels()
       << ", \"deadline_s\": " << constraints.time_budget_s
       << ", \"memory_mb\": " << constraints.memory_budget_mb
       << ", \"resident_per_worker\": "
       << runtime.options().max_resident_per_worker
       << ", \"route_shards\": " << kShards
       << ", \"route_workers_per_shard\": " << per_shard_workers << "},\n";
  json << "  \"configs\": [\n";
  json << "    {\"name\": \"submit_batch\", \"wall_s\": " << batch_result.wall_s
       << ", \"items_per_s\": " << batch_result.items_per_s
       << ", \"speedup_vs_submit_batch\": 1},\n";
  json << "    {\"name\": \"serve_runtime\", \"wall_s\": " << serve_result.wall_s
       << ", \"items_per_s\": " << serve_result.items_per_s
       << ", \"speedup_vs_submit_batch\": " << ratio << "},\n";
  json << "    {\"name\": \"serve_runtime_mixed\", \"wall_s\": "
       << mixed_result.wall_s
       << ", \"items_per_s\": " << mixed_result.items_per_s
       << ", \"speedup_vs_submit_batch\": " << mixed_ratio << "},\n";
  json << "    {\"name\": \"serve_runtime_tenants\", \"wall_s\": "
       << tenant_result.wall_s
       << ", \"items_per_s\": " << tenant_result.items_per_s
       << ", \"speedup_vs_submit_batch\": " << tenant_ratio << "},\n";
  json << "    {\"name\": \"serve_equal_workers\", \"wall_s\": "
       << equal_result.wall_s
       << ", \"items_per_s\": " << equal_result.items_per_s
       << ", \"speedup_vs_submit_batch\": " << equal_ratio << "},\n";
  json << "    {\"name\": \"route_sharded_4\", \"wall_s\": "
       << route_result.wall_s
       << ", \"items_per_s\": " << route_result.items_per_s
       << ", \"speedup_vs_submit_batch\": " << route_ratio << "},\n";
  json << "    {\"name\": \"route_coalesced_4\", \"wall_s\": "
       << coalesced_result.wall_s
       << ", \"items_per_s\": " << coalesced_result.items_per_s
       << ", \"speedup_vs_submit_batch\": " << coalesced_ratio << "}\n";
  json << "  ],\n";
  json << "  \"serve_vs_submit_ratio\": " << ratio << ",\n";
  json << "  \"mixed_vs_single_class_ratio\": "
       << mixed_result.items_per_s / serve_result.items_per_s << ",\n";
  json << "  \"tenant_vs_single_class_ratio\": "
       << tenant_result.items_per_s / serve_result.items_per_s << ",\n";
  json << "  \"route_vs_equal_serve_ratio\": " << route_vs_equal << ",\n";
  json << "  \"coalesced_vs_sharded_ratio\": " << coalesced_vs_sharded << "\n";
  json << "}\n";
  std::cout << "\nwrote BENCH_serve.json (serve/submit ratio " << ratio
            << ", mixed/single-class ratio "
            << mixed_result.items_per_s / serve_result.items_per_s
            << ", tenant/single-class ratio "
            << tenant_result.items_per_s / serve_result.items_per_s
            << ", route/equal-serve ratio " << route_vs_equal
            << ", coalesced/sharded ratio " << coalesced_vs_sharded << ")\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
