// Reproduces Table I (§VI-A): the summary of the 10 visual analysis tasks,
// their label counts (1104 in total), and the deployed 30-model zoo with
// per-model costs — the substrate of every other experiment.

#include <iostream>

#include "bench/bench_util.h"
#include "util/table.h"
#include "zoo/model_zoo.h"

namespace {

using namespace ams;

void Run() {
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const zoo::LabelSpace& labels = zoo.labels();

  bench::Banner("Table I — summary of 10 visual analysis tasks");
  util::AsciiTable tasks;
  tasks.SetHeader({"task", "labels", "models"});
  int total_labels = 0;
  for (const zoo::TaskInfo& info : labels.tasks()) {
    tasks.AddRow({info.name, std::to_string(info.num_labels),
                  std::to_string(zoo.ModelsForTask(info.kind).size())});
    total_labels += info.num_labels;
  }
  tasks.AddRow({"10 Tasks", std::to_string(total_labels),
                std::to_string(zoo.num_models())});
  tasks.Print(std::cout);

  bench::Banner("Deployed model zoo (3 cost/accuracy tiers per task)");
  util::AsciiTable models;
  models.SetHeader({"id", "model", "time (ms)", "mem (MB)", "accuracy"});
  for (const zoo::ModelSpec& spec : zoo.models()) {
    models.AddRow({std::to_string(spec.id), spec.name,
                   util::FormatDouble(spec.time_s * 1000.0, 0),
                   util::FormatDouble(spec.mem_mb, 0),
                   util::FormatDouble(spec.accuracy, 2)});
  }
  models.Print(std::cout);
  std::cout << "\ntotal 'no policy' time per image: "
            << util::FormatDouble(zoo.TotalTimeSeconds(), 2)
            << " s (paper: 5.16 s); per-model time range 50-400 ms, memory "
               "range 500-8000 MB (Table III)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
