// Reproduces Fig. 11 (§VI-G): value recall under two-dimensional
// deadline + GPU-memory constraints. As in the paper, the DuelingDQN agent
// trained on Stanford40 (Agent1) is evaluated on the VOC 2012 test set
// (Dataset2) — the worst case of their experiments — with Algorithm 2
// against random packing and the relaxed optimal* bound, for 8 / 12 / 16 GB
// of GPU memory.
//
// Paper reference points: at a 0.8 s deadline Algorithm 2 improves recall
// over random by 106.9% / 52.8% / 19.5% under 8 / 12 / 16 GB; the ratio to
// optimal* exceeds 1-1/e in most cases.

#include <cmath>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "eval/agent_cache.h"
#include "eval/memory_sweep.h"
#include "eval/world.h"
#include "util/table.h"

namespace {

using namespace ams;

void Run() {
  eval::World world(eval::WorldConfig::FromEnv());
  eval::AgentCache cache;

  eval::AgentRequest request;
  request.key = world.CacheKey("stanford40", "dueling");
  request.oracle = &world.oracle(world.IndexOf("stanford40"));
  request.config = world.BaseTrainConfig();
  request.config.scheme = rl::DrlScheme::kDuelingDqn;
  std::unique_ptr<rl::Agent> agent1 = cache.GetOrTrain(request);

  const int d = world.IndexOf("voc2012");
  const data::Oracle& oracle = world.oracle(d);
  const std::vector<int> items = world.EvalItems(d);

  const std::vector<double> deadlines = eval::DefaultMemoryDeadlines();
  const double budgets_gb[] = {8.0, 12.0, 16.0};
  const double paper_gain_at_08[] = {106.9, 52.8, 19.5};

  std::vector<std::vector<double>> ratio_rows(deadlines.size());
  for (size_t b = 0; b < std::size(budgets_gb); ++b) {
    const double mem_mb = budgets_gb[b] * 1024.0;
    const eval::MemorySweep alg2 = eval::ComputeMemorySweep(
        agent1.get(), oracle, items, mem_mb, deadlines, /*seed=*/3);
    const eval::MemorySweep random = eval::ComputeMemorySweep(
        nullptr, oracle, items, mem_mb, deadlines, /*seed=*/3);
    const eval::MemorySweep star = eval::ComputeOptimalStarMemorySweep(
        oracle, items, mem_mb, deadlines);

    bench::Banner("Fig. 11 — value recall, " +
                  util::FormatDouble(budgets_gb[b], 0) +
                  " GB GPU memory (Agent1 on Dataset2)");
    util::AsciiTable table;
    table.SetHeader({"deadline(s)", "algorithm2", "random", "optimal*"});
    for (size_t k = 0; k < deadlines.size(); ++k) {
      table.AddRow(util::FormatDouble(deadlines[k], 1),
                   {alg2.avg_recall[k], random.avg_recall[k],
                    star.avg_recall[k]});
      ratio_rows[k].push_back(alg2.avg_recall[k] /
                              std::max(1e-9, star.avg_recall[k]));
    }
    table.Print(std::cout);

    const size_t at_08 = 3;  // deadlines[3] == 0.8
    std::cout << "\nAlgorithm 2 vs random at 0.8 s: +"
              << util::FormatDouble(
                     100.0 * (alg2.avg_recall[at_08] /
                                  std::max(1e-9, random.avg_recall[at_08]) -
                              1.0),
                     1)
              << "% recall (paper: +" << paper_gain_at_08[b] << "%)\n";
  }

  bench::Banner(
      "Fig. 11(d) — performance ratio of Algorithm 2 to optimal* "
      "(1-1/e = 0.632)");
  util::AsciiTable ratios;
  ratios.SetHeader({"deadline(s)", "8GB", "12GB", "16GB", "1-1/e"});
  for (size_t k = 0; k < deadlines.size(); ++k) {
    std::vector<double> row = ratio_rows[k];
    row.push_back(1.0 - 1.0 / std::exp(1.0));
    ratios.AddRow(util::FormatDouble(deadlines[k], 1), row);
  }
  ratios.Print(std::cout);
}

}  // namespace

int main() {
  Run();
  return 0;
}
