// Reproduces Table III (§VI-H): the scheduling overhead of the framework —
// the DRL agent's per-decision latency and memory footprint vs the deep
// learning models' execution costs.
//
// Paper reference points: agent decision 3-6 ms and ~100 MB CPU memory;
// models 50-400 ms and 500-8000 MB GPU memory. (Our agent decision is a
// plain CPU MLP forward pass; at the paper's 256-unit hidden layer the
// latency lands well under their 3-6 ms, which included Python overhead.)

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "nn/net.h"
#include "rl/agent.h"
#include "util/rng.h"
#include "zoo/model_zoo.h"

namespace {

using namespace ams;

std::unique_ptr<rl::Agent> MakeAgent(int hidden, bool dueling) {
  nn::MlpConfig config;
  config.input_dim = zoo::kTotalLabels;
  config.hidden_dims = {hidden};
  config.output_dim = 31;
  if (dueling) {
    return std::make_unique<rl::Agent>(
        std::make_unique<nn::DuelingMlp>(config, 42), nn::NetKind::kDueling);
  }
  return std::make_unique<rl::Agent>(std::make_unique<nn::Mlp>(config, 42),
                                     nn::NetKind::kMlp);
}

// Agent decision latency: one forward pass on a typical (sparse) state.
void BM_AgentDecision(benchmark::State& state) {
  const int hidden = static_cast<int>(state.range(0));
  const bool dueling = state.range(1) != 0;
  std::unique_ptr<rl::Agent> agent = MakeAgent(hidden, dueling);
  std::vector<float> features(static_cast<size_t>(zoo::kTotalLabels), 0.0f);
  util::Rng rng(7);
  for (int i = 0; i < 40; ++i) {  // ~40 set labels, a mid-episode state
    features[static_cast<size_t>(rng.UniformInt(0, zoo::kTotalLabels - 1))] =
        1.0f;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent->PredictValues(features));
  }
  state.SetLabel((dueling ? "dueling_h" : "mlp_h") + std::to_string(hidden));
}
BENCHMARK(BM_AgentDecision)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMicrosecond);

// Simulated model execution, for scale: replaying one stored inference.
void BM_ModelExecute(benchmark::State& state) {
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  zoo::LatentScene scene;
  scene.item_seed = 99;
  scene.scene_id = 3;
  scene.persons.push_back({true, 0.8, 3, 0, true, 0.9});
  scene.objects = {0, 19, 31};
  scene.object_visibility = {0.9, 0.7, 0.8};
  const int model = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(zoo.Execute(model, scene));
  }
}
BENCHMARK(BM_ModelExecute)->Arg(0)->Arg(13)->Arg(29)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Memory side of Table III, from first principles.
  std::printf("\nTable III — computing cost of the DRL agent vs the models\n");
  for (const int hidden : {128, 256}) {
    std::unique_ptr<rl::Agent> agent = MakeAgent(hidden, /*dueling=*/true);
    const size_t params = agent->net()->NumParams();
    // Params + Adam moments (2x) + target net during training.
    const double train_mb =
        static_cast<double>(params) * 4.0 * 4.0 / (1024.0 * 1024.0);
    std::printf(
        "  dueling agent h=%d: %zu params, ~%.1f MB inference, ~%.1f MB "
        "training state (paper: ~100 MB CPU)\n",
        hidden, params,
        static_cast<double>(params) * 4.0 / (1024.0 * 1024.0), train_mb);
  }
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  double min_t = 1e9, max_t = 0, min_m = 1e12, max_m = 0;
  for (const auto& spec : zoo.models()) {
    min_t = std::min(min_t, spec.time_s);
    max_t = std::max(max_t, spec.time_s);
    min_m = std::min(min_m, spec.mem_mb);
    max_m = std::max(max_m, spec.mem_mb);
  }
  std::printf(
      "  deep models: %.0f-%.0f ms execution (paper: 50-400 ms), %.0f-%.0f "
      "MB GPU memory (paper: 500-8000 MB)\n",
      min_t * 1000.0, max_t * 1000.0, min_m, max_m);
  return 0;
}
