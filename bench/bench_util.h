#ifndef AMS_BENCH_BENCH_UTIL_H_
#define AMS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/table.h"

namespace ams::bench {

/// Integer env-var knob with a fallback (the benches' AMS_BENCH_* scaling).
inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

/// Prints a section banner so bench output reads like the paper's figures.
inline void Banner(const std::string& title) {
  std::cout << "\n================================================================\n"
            << title << "\n"
            << "================================================================\n";
}

/// Prints an empirical CDF as rows "x  P(X<=x)" on a fixed grid.
inline void PrintCdf(const std::string& name, std::vector<double> values,
                     const std::vector<double>& grid) {
  std::sort(values.begin(), values.end());
  util::AsciiTable table;
  table.SetHeader({name, "P(X<=x)"});
  for (double x : grid) {
    table.AddRow(util::FormatDouble(x, 2),
                 {util::CdfAt(values, x)});
  }
  table.Print(std::cout);
}

/// Evenly spaced grid [lo, hi] with n points.
inline std::vector<double> Grid(double lo, double hi, int n) {
  std::vector<double> grid;
  grid.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    grid.push_back(lo + (hi - lo) * i / (n - 1));
  }
  return grid;
}

}  // namespace ams::bench

#endif  // AMS_BENCH_BENCH_UTIL_H_
