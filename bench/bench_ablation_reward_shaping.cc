// Ablation of the reward smoothing (§IV-A): the paper uses
// ln(theta*sum(conf)+1) to stop many-label models (e.g. the 70-keypoint face
// landmark detector) from dominating the reward, and notes that average-
// confidence smoothing works similarly while the raw sum is biased. This
// bench trains DuelingDQN under the three shapings and measures (a) how
// early the agent schedules the many-label landmark models and (b) the
// resulting scheduling efficiency.

#include <iostream>
#include <memory>

#include "bench/agent_policies.h"
#include "bench/bench_util.h"
#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "eval/recall_curve.h"
#include "eval/world.h"
#include "rl/trainer.h"
#include "util/stats.h"
#include "util/table.h"
#include "zoo/model_zoo.h"

namespace {

using namespace ams;

const char* ShapingName(core::RewardShaping shaping) {
  switch (shaping) {
    case core::RewardShaping::kLogSum:
      return "log_sum (Eq. 3)";
    case core::RewardShaping::kAverage:
      return "average_conf";
    case core::RewardShaping::kRawSum:
      return "raw_sum";
  }
  return "";
}

void Run() {
  const eval::WorldConfig world_config = eval::WorldConfig::FromEnv();
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const data::Dataset dataset = data::Dataset::Generate(
      data::DatasetProfile::MirFlickr25(), zoo.labels(),
      world_config.items_per_dataset, world_config.seed);
  const data::Oracle oracle(&zoo, &dataset);
  std::vector<int> items = dataset.test_indices();
  items.resize(std::min<size_t>(items.size(),
                                static_cast<size_t>(world_config.eval_items)));

  // The many-label models whose reward the log smoothing tames.
  std::vector<int> landmark_models;
  for (int m : zoo.ModelsForTask(zoo::TaskKind::kFaceLandmark)) {
    landmark_models.push_back(m);
  }
  for (int m : zoo.ModelsForTask(zoo::TaskKind::kHandLandmark)) {
    landmark_models.push_back(m);
  }

  bench::Banner("Ablation (SIV-A) — reward smoothing variants, MirFlickr25");
  util::AsciiTable table;
  table.SetHeader({"shaping", "avg first-landmark position",
                   "avg time to 0.8 recall (s)", "avg time to 1.0 recall (s)"});
  for (const core::RewardShaping shaping :
       {core::RewardShaping::kLogSum, core::RewardShaping::kAverage,
        core::RewardShaping::kRawSum}) {
    rl::TrainConfig config;
    config.scheme = rl::DrlScheme::kDuelingDqn;
    config.hidden_dim = world_config.hidden_dim;
    config.episodes = world_config.train_episodes;
    config.eps_decay_steps = world_config.train_episodes * 4;
    config.shaping = shaping;
    config.seed = world_config.seed;
    rl::AgentTrainer trainer(&oracle, config);
    std::unique_ptr<rl::Agent> agent = trainer.Train();

    // Position at which the first landmark model appears in the sequence,
    // measured through a Q-greedy session run to full recall.
    sched::PolicyOptions options;
    options.predictor = agent.get();
    core::LabelingService service =
        core::LabelingServiceBuilder(&zoo)
            .WithOracle(&oracle)
            .WithMode(core::ExecutionMode::kSerial)
            .WithPolicy("q_greedy", options)
            .WithRecallTarget(1.0)
            .Build();
    double pos_sum = 0.0;
    for (int item : items) {
      const core::LabelOutcome outcome =
          service.Submit(core::WorkItem::Stored(item));
      double position = static_cast<double>(zoo.num_models());
      const auto& executions = outcome.schedule.executions;
      for (size_t k = 0; k < executions.size(); ++k) {
        for (int lm : landmark_models) {
          if (executions[k].model_id == lm) {
            position = std::min(position, static_cast<double>(k + 1));
          }
        }
      }
      pos_sum += position;
    }
    const eval::RecallCurve curve = eval::ComputeRecallCurve(
        bench::QGreedyFactory(agent.get()), oracle, items,
        eval::DefaultThresholds());
    table.AddRow({ShapingName(shaping),
                  util::FormatDouble(pos_sum / items.size(), 1),
                  util::FormatDouble(curve.avg_time_s[7], 3),
                  util::FormatDouble(curve.avg_time_s[9], 3)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: raw_sum drags the many-label landmark "
               "models to the front regardless of content; log_sum and "
               "average_conf keep them in their rightful place and schedule "
               "more efficiently (SIV-A).\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
