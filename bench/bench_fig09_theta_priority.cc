// Reproduces Fig. 9 (§VI-E): the effect of the priority parameter θ of one
// "face detection" model on its position in the scheduling sequence (left)
// and on the total execution time at full value recall (right), for the four
// DRL schemes and θ ∈ {1, 2, 5, 10}.
//
// Paper reference points: DuelingDQN schedules the face-detection model at
// average position 28.9 / 27.4 / 4.0 / 3.0 for θ = 1 / 2 / 5 / 10, while the
// total-time optimization stays intact (51.9 / 48.2 / 54.3 / 53.1% time
// saved vs random).

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/labeling_service.h"
#include "data/dataset_profile.h"
#include "eval/agent_cache.h"
#include "eval/recall_curve.h"
#include "eval/world.h"
#include "sched/basic_policies.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace ams;

const rl::DrlScheme kSchemes[] = {
    rl::DrlScheme::kDqn, rl::DrlScheme::kDoubleDqn, rl::DrlScheme::kDuelingDqn,
    rl::DrlScheme::kDeepSarsa};
const double kThetas[] = {1.0, 2.0, 5.0, 10.0};

void Run() {
  const eval::WorldConfig config = eval::WorldConfig::FromEnv();
  eval::AgentCache cache;

  // The boosted model: the medium-tier face detector.
  const zoo::ModelZoo base_zoo = zoo::ModelZoo::CreateDefault();
  const int face_model =
      base_zoo.ModelsForTask(zoo::TaskKind::kFaceDetection)[1];
  std::cout << "boosted model: " << base_zoo.model(face_model).name
            << " (id " << face_model << ")\n";

  // One zoo + oracle per theta (outputs are theta-independent, but the
  // reward and hence the trained agents differ).
  const data::DatasetProfile profile = data::DatasetProfile::MsCoco();
  std::vector<std::unique_ptr<zoo::ModelZoo>> zoos;
  std::vector<std::unique_ptr<data::Dataset>> datasets;
  std::vector<std::unique_ptr<data::Oracle>> oracles;
  for (double theta : kThetas) {
    auto z = std::make_unique<zoo::ModelZoo>(zoo::ModelZoo::CreateDefault());
    z->SetTheta(face_model, theta);
    datasets.push_back(std::make_unique<data::Dataset>(data::Dataset::Generate(
        profile, z->labels(), config.items_per_dataset, config.seed)));
    oracles.push_back(
        std::make_unique<data::Oracle>(z.get(), datasets.back().get()));
    zoos.push_back(std::move(z));
  }

  // 4 schemes x 4 thetas, trained in parallel.
  std::vector<eval::AgentRequest> requests;
  for (size_t ti = 0; ti < std::size(kThetas); ++ti) {
    for (const rl::DrlScheme scheme : kSchemes) {
      eval::AgentRequest request;
      request.key = "mscoco_" + SchemeName(scheme) + "_th" +
                    std::to_string(static_cast<int>(kThetas[ti])) + "_i" +
                    std::to_string(config.items_per_dataset) + "_e" +
                    std::to_string(config.train_episodes) + "_h" +
                    std::to_string(config.hidden_dim);
      request.oracle = oracles[ti].get();
      request.config.scheme = scheme;
      request.config.hidden_dim = config.hidden_dim;
      request.config.episodes = config.train_episodes;
      request.config.eps_decay_steps = config.train_episodes * 4;
      request.config.seed = config.seed;
      requests.push_back(std::move(request));
    }
  }
  std::vector<std::unique_ptr<rl::Agent>> agents =
      cache.GetOrTrainAll(requests);

  // Evaluate: run Q-greedy to full recall; note the face model's position
  // (models not reached before full recall count as position 30).
  util::AsciiTable order_table, time_table;
  order_table.SetHeader({"theta", "dqn", "double", "dueling", "sarsa",
                         "random"});
  time_table.SetHeader({"theta", "dqn", "double", "dueling", "sarsa",
                        "random"});
  for (size_t ti = 0; ti < std::size(kThetas); ++ti) {
    const data::Oracle& oracle = *oracles[ti];
    std::vector<int> items = datasets[ti]->test_indices();
    items.resize(std::min<size_t>(items.size(),
                                  static_cast<size_t>(config.eval_items)));
    std::vector<double> orders, times;
    for (size_t s = 0; s < std::size(kSchemes); ++s) {
      rl::Agent* agent = agents[ti * std::size(kSchemes) + s].get();
      double order_sum = 0.0, time_sum = 0.0;
      // A Q-greedy session run to full recall; the builder clones the agent
      // for the session's policy.
      sched::PolicyOptions options;
      options.predictor = agent;
      core::LabelingService service =
          core::LabelingServiceBuilder(&oracle.zoo())
              .WithOracle(&oracle)
              .WithMode(core::ExecutionMode::kSerial)
              .WithPolicy("q_greedy", options)
              .WithRecallTarget(1.0)
              .Build();
      for (int item : items) {
        const core::LabelOutcome outcome =
            service.Submit(core::WorkItem::Stored(item));
        const auto& executions = outcome.schedule.executions;
        double position = static_cast<double>(oracle.num_models());
        for (size_t k = 0; k < executions.size(); ++k) {
          if (executions[k].model_id == face_model) {
            position = static_cast<double>(k + 1);
            break;
          }
        }
        order_sum += position;
        time_sum += outcome.schedule.makespan_s;
      }
      orders.push_back(order_sum / static_cast<double>(items.size()));
      times.push_back(time_sum / static_cast<double>(items.size()));
    }
    // Random baseline (same for every theta up to seed).
    const eval::FullRecallCosts random_costs = eval::ComputeFullRecallCosts(
        [] { return std::make_unique<sched::RandomPolicy>(123); }, oracle,
        items);
    orders.push_back((oracle.num_models() + 1) / 2.0);  // uniform expectation
    times.push_back(util::Mean(random_costs.time_s));
    order_table.AddRow(util::FormatDouble(kThetas[ti], 0), orders, 1);
    time_table.AddRow(util::FormatDouble(kThetas[ti], 0), times, 2);
  }

  bench::Banner(
      "Fig. 9(a) — average execution order of the boosted face-detection "
      "model (paper DuelingDQN: 28.9 / 27.4 / 4.0 / 3.0)");
  order_table.Print(std::cout);
  bench::Banner(
      "Fig. 9(b) — average execution time at full recall (s); priority "
      "shifts must not break the time optimization");
  time_table.Print(std::cout);
}

}  // namespace

int main() {
  Run();
  return 0;
}
