// Reproduces Fig. 4 and Fig. 5 (§VI-B): for the required output-value recall
// rate 0.1 .. 1.0, the average number of executed models per image (Fig. 4)
// and the average model execution time per image (Fig. 5), for the four DRL
// schemes (DQN, DoubleDQN, DuelingDQN, DeepSARSA) against the random and
// optimal policies, on MSCOCO 2017, MirFlickr25 and Places365.
//
// Paper reference points (recall 0.8): DuelingDQN saves 44.1-60.6% of model
// executions and 45.6-59.5% of execution time vs random; optimal saves
// 79.3-84.0%. At recall 1.0: DuelingDQN ~48-50%, optimal 65.6-76.5%.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/agent_policies.h"
#include "bench/bench_util.h"
#include "eval/agent_cache.h"
#include "eval/recall_curve.h"
#include "eval/world.h"
#include "sched/basic_policies.h"
#include "util/table.h"

namespace {

using namespace ams;

const rl::DrlScheme kSchemes[] = {
    rl::DrlScheme::kDqn, rl::DrlScheme::kDoubleDqn, rl::DrlScheme::kDuelingDqn,
    rl::DrlScheme::kDeepSarsa};

void Run() {
  eval::World world(eval::WorldConfig::FromEnv());
  eval::AgentCache cache;
  const std::vector<std::string> datasets = {"mscoco", "mirflickr25",
                                             "places365"};

  // Train (or load) the 12 agents in parallel.
  std::vector<eval::AgentRequest> requests;
  for (const auto& name : datasets) {
    for (const rl::DrlScheme scheme : kSchemes) {
      eval::AgentRequest request;
      request.key = world.CacheKey(name, SchemeName(scheme));
      request.oracle = &world.oracle(world.IndexOf(name));
      request.config = world.BaseTrainConfig();
      request.config.scheme = scheme;
      requests.push_back(std::move(request));
    }
  }
  std::vector<std::unique_ptr<rl::Agent>> agents =
      cache.GetOrTrainAll(requests);

  const std::vector<double> thresholds = eval::DefaultThresholds();
  size_t agent_index = 0;
  for (const auto& name : datasets) {
    const int d = world.IndexOf(name);
    const data::Oracle& oracle = world.oracle(d);
    const std::vector<int> items = world.EvalItems(d);

    std::vector<eval::RecallCurve> curves;
    for (size_t s = 0; s < std::size(kSchemes); ++s) {
      eval::RecallCurve curve = eval::ComputeRecallCurve(
          bench::QGreedyFactory(agents[agent_index].get()), oracle, items,
          thresholds);
      curve.policy_name = SchemeName(kSchemes[s]);
      curves.push_back(std::move(curve));
      ++agent_index;
    }
    curves.push_back(eval::ComputeRecallCurve(
        [] { return std::make_unique<sched::RandomPolicy>(77); }, oracle,
        items, thresholds));
    curves.push_back(eval::ComputeRecallCurve(
        [] { return std::make_unique<sched::OptimalPolicy>(); }, oracle, items,
        thresholds));

    bench::Banner("Fig. 4 (" + name +
                  ") — avg number of executed models vs required recall");
    util::AsciiTable models;
    std::vector<std::string> header = {"recall"};
    for (const auto& curve : curves) header.push_back(curve.policy_name);
    models.SetHeader(header);
    for (size_t k = 0; k < thresholds.size(); ++k) {
      std::vector<double> row;
      for (const auto& curve : curves) row.push_back(curve.avg_models[k]);
      models.AddRow(util::FormatDouble(thresholds[k], 1), row, 2);
    }
    models.Print(std::cout);

    bench::Banner("Fig. 5 (" + name +
                  ") — avg model execution time (s) vs required recall");
    util::AsciiTable times;
    times.SetHeader(header);
    for (size_t k = 0; k < thresholds.size(); ++k) {
      std::vector<double> row;
      for (const auto& curve : curves) row.push_back(curve.avg_time_s[k]);
      times.AddRow(util::FormatDouble(thresholds[k], 1), row, 3);
    }
    times.Print(std::cout);

    // Headline savings of the best agent vs random.
    const eval::RecallCurve& dueling = curves[2];
    const eval::RecallCurve& random = curves[4];
    auto saving = [&](const std::vector<double>& a,
                      const std::vector<double>& b, size_t k) {
      return 100.0 * (1.0 - a[k] / b[k]);
    };
    std::cout << "\nDuelingDQN vs random on " << name << ": saves "
              << util::FormatDouble(
                     saving(dueling.avg_models, random.avg_models, 7), 1)
              << "% executions at recall 0.8 (paper: 44.1-60.6%), "
              << util::FormatDouble(
                     saving(dueling.avg_time_s, random.avg_time_s, 9), 1)
              << "% time at recall 1.0 (paper: 48.6-51.2%)\n";
  }
}

}  // namespace

int main() {
  Run();
  return 0;
}
