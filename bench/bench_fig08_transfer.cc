// Reproduces Fig. 8 (§VI-D): knowledge transferability. Agent1 is trained on
// Stanford40 (human actions), Agent2 on PASCAL VOC 2012 (broad objects);
// both are evaluated on both test sets with the Q-value greedy policy,
// measuring the average execution time until all output value is recalled,
// plus the per-image time CDFs.
//
// Paper reference points: no policy 5.16 s; on Dataset1 (Stanford40)
// Agent1 1.94 s / Agent2 2.09 s / random 4.12 s / optimal 0.79 s; on
// Dataset2 (VOC) Agent1 2.63 s / Agent2 2.47 s / random 4.04 s /
// optimal 0.68 s — knowledge learned on one corpus transfers to the other.

#include <iostream>
#include <memory>

#include "bench/agent_policies.h"
#include "bench/bench_util.h"
#include "eval/agent_cache.h"
#include "eval/recall_curve.h"
#include "eval/world.h"
#include "sched/basic_policies.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace ams;

void Run() {
  eval::World world(eval::WorldConfig::FromEnv());
  eval::AgentCache cache;

  std::vector<eval::AgentRequest> requests(2);
  requests[0].key = world.CacheKey("stanford40", "dueling");
  requests[0].oracle = &world.oracle(world.IndexOf("stanford40"));
  requests[0].config = world.BaseTrainConfig();
  requests[0].config.scheme = rl::DrlScheme::kDuelingDqn;
  requests[1].key = world.CacheKey("voc2012", "dueling");
  requests[1].oracle = &world.oracle(world.IndexOf("voc2012"));
  requests[1].config = world.BaseTrainConfig();
  requests[1].config.scheme = rl::DrlScheme::kDuelingDqn;
  std::vector<std::unique_ptr<rl::Agent>> agents =
      cache.GetOrTrainAll(requests);
  rl::Agent* agent1 = agents[0].get();  // trained on Stanford40
  rl::Agent* agent2 = agents[1].get();  // trained on VOC 2012

  const double paper[2][4] = {{1.94, 2.09, 4.12, 0.79},
                              {2.63, 2.47, 4.04, 0.68}};
  const char* dataset_names[2] = {"stanford40", "voc2012"};
  for (int ds = 0; ds < 2; ++ds) {
    const int d = world.IndexOf(dataset_names[ds]);
    const data::Oracle& oracle = world.oracle(d);
    const std::vector<int> items = world.EvalItems(d);

    const eval::FullRecallCosts costs_a1 =
        eval::ComputeFullRecallCosts(bench::QGreedyFactory(agent1), oracle,
                                     items);
    const eval::FullRecallCosts costs_a2 =
        eval::ComputeFullRecallCosts(bench::QGreedyFactory(agent2), oracle,
                                     items);
    const eval::FullRecallCosts costs_rnd = eval::ComputeFullRecallCosts(
        [] { return std::make_unique<sched::RandomPolicy>(31); }, oracle,
        items);
    const eval::FullRecallCosts costs_opt = eval::ComputeFullRecallCosts(
        [] { return std::make_unique<sched::OptimalPolicy>(); }, oracle,
        items);

    bench::Banner(std::string("Fig. 8 — avg time to full value recall on ") +
                  (ds == 0 ? "Dataset1 (Stanford40)" : "Dataset2 (VOC 2012)"));
    util::AsciiTable table;
    table.SetHeader({"policy", "avg time/image (s)", "paper (s)"});
    table.AddRow("agent1 (Stanford40)", {util::Mean(costs_a1.time_s),
                                         paper[ds][0]});
    table.AddRow("agent2 (VOC 2012)", {util::Mean(costs_a2.time_s),
                                       paper[ds][1]});
    table.AddRow("random", {util::Mean(costs_rnd.time_s), paper[ds][2]});
    table.AddRow("optimal", {util::Mean(costs_opt.time_s), paper[ds][3]});
    table.Print(std::cout);

    bench::Banner("Fig. 8 — per-image time CDFs");
    const std::vector<double> grid = bench::Grid(0.0, 5.5, 12);
    bench::PrintCdf("agent1 t", costs_a1.time_s, grid);
    std::cout << '\n';
    bench::PrintCdf("agent2 t", costs_a2.time_s, grid);
    std::cout << '\n';
    bench::PrintCdf("random t", costs_rnd.time_s, grid);
  }
}

}  // namespace

int main() {
  Run();
  return 0;
}
