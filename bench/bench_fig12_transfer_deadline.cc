// Reproduces Fig. 12 (§VI-F): knowledge transfer under deadline constraints.
// Agent1 (trained on Stanford40) and Agent2 (trained on VOC 2012) schedule
// with Algorithm 1 on both test sets; random and optimal* are the baselines.
//
// Paper reference points: with a 1.0 s deadline, Agent1/Agent2 improve the
// recalled value by 346.8% / 224.9% on Dataset1 and by 250.5% / 190.5% on
// Dataset2, relative to random.

#include <iostream>
#include <memory>

#include "bench/agent_policies.h"
#include "bench/bench_util.h"
#include "eval/agent_cache.h"
#include "eval/deadline_sweep.h"
#include "eval/world.h"
#include "sched/basic_policies.h"
#include "util/table.h"

namespace {

using namespace ams;

void Run() {
  eval::World world(eval::WorldConfig::FromEnv());
  eval::AgentCache cache;

  std::vector<eval::AgentRequest> requests(2);
  requests[0].key = world.CacheKey("stanford40", "dueling");
  requests[0].oracle = &world.oracle(world.IndexOf("stanford40"));
  requests[0].config = world.BaseTrainConfig();
  requests[0].config.scheme = rl::DrlScheme::kDuelingDqn;
  requests[1].key = world.CacheKey("voc2012", "dueling");
  requests[1].oracle = &world.oracle(world.IndexOf("voc2012"));
  requests[1].config = world.BaseTrainConfig();
  requests[1].config.scheme = rl::DrlScheme::kDuelingDqn;
  std::vector<std::unique_ptr<rl::Agent>> agents =
      cache.GetOrTrainAll(requests);

  const std::vector<double> deadlines = eval::DefaultDeadlines();
  const char* dataset_names[2] = {"stanford40", "voc2012"};
  for (int ds = 0; ds < 2; ++ds) {
    const int d = world.IndexOf(dataset_names[ds]);
    const data::Oracle& oracle = world.oracle(d);
    const std::vector<int> items = world.EvalItems(d);

    const eval::DeadlineSweep sweep_a1 = eval::ComputeDeadlineSweep(
        bench::CostQGreedyFactory(agents[0].get()), oracle, items, deadlines);
    const eval::DeadlineSweep sweep_a2 = eval::ComputeDeadlineSweep(
        bench::CostQGreedyFactory(agents[1].get()), oracle, items, deadlines);
    const eval::DeadlineSweep sweep_rnd = eval::ComputeDeadlineSweep(
        [] { return std::make_unique<sched::RandomPolicy>(59); }, oracle,
        items, deadlines);
    const eval::DeadlineSweep sweep_star =
        eval::ComputeOptimalStarSweep(oracle, items, deadlines);

    bench::Banner(std::string("Fig. 12 — value recall vs deadline on ") +
                  (ds == 0 ? "Dataset1 (Stanford40)" : "Dataset2 (VOC 2012)"));
    util::AsciiTable table;
    table.SetHeader({"deadline(s)", "agent1(Alg1)", "agent2(Alg1)", "random",
                     "optimal*"});
    for (size_t k = 0; k < deadlines.size(); ++k) {
      table.AddRow(util::FormatDouble(deadlines[k], 2),
                   {sweep_a1.avg_recall[k], sweep_a2.avg_recall[k],
                    sweep_rnd.avg_recall[k], sweep_star.avg_recall[k]});
    }
    table.Print(std::cout);

    const size_t at_1s = 3;  // deadlines[3] == 1.0
    auto gain = [&](const eval::DeadlineSweep& sweep) {
      return 100.0 * (sweep.avg_recall[at_1s] /
                          std::max(1e-9, sweep_rnd.avg_recall[at_1s]) -
                      1.0);
    };
    std::cout << "\nat 1.0 s deadline vs random: agent1 +"
              << util::FormatDouble(gain(sweep_a1), 1) << "%, agent2 +"
              << util::FormatDouble(gain(sweep_a2), 1)
              << "% (paper: +346.8/224.9% on D1, +250.5/190.5% on D2)\n";
  }
}

}  // namespace

int main() {
  Run();
  return 0;
}
