// Reproduces Fig. 10 (§VI-F): value recall under per-image deadline
// constraints on MSCOCO 2017, MirFlickr25 and Places365, comparing
// Algorithm 1 (Cost-Q greedy), the plain Q-greedy policy, the random policy
// and the relaxed optimal* upper bound, plus the performance ratio of
// Algorithm 1 to optimal* against the classic 1-1/e guarantee.
//
// Paper reference points: Algorithm 1 boosts the value recall by
// 188.7-309.5% over random at a 0.5 s deadline, and its ratio to optimal*
// exceeds 1-1/e (~0.632) in most cases.

#include <cmath>
#include <iostream>
#include <memory>

#include "bench/agent_policies.h"
#include "bench/bench_util.h"
#include "eval/agent_cache.h"
#include "eval/deadline_sweep.h"
#include "eval/world.h"
#include "sched/basic_policies.h"
#include "util/table.h"

namespace {

using namespace ams;

void Run() {
  eval::World world(eval::WorldConfig::FromEnv());
  eval::AgentCache cache;
  const std::vector<std::string> datasets = {"mscoco", "mirflickr25",
                                             "places365"};

  std::vector<eval::AgentRequest> requests;
  for (const auto& name : datasets) {
    eval::AgentRequest request;
    request.key = world.CacheKey(name, "dueling");
    request.oracle = &world.oracle(world.IndexOf(name));
    request.config = world.BaseTrainConfig();
    request.config.scheme = rl::DrlScheme::kDuelingDqn;
    requests.push_back(std::move(request));
  }
  std::vector<std::unique_ptr<rl::Agent>> agents =
      cache.GetOrTrainAll(requests);

  const std::vector<double> deadlines = eval::DefaultDeadlines();
  std::vector<std::vector<double>> ratio_rows(deadlines.size());

  for (size_t ds = 0; ds < datasets.size(); ++ds) {
    const int d = world.IndexOf(datasets[ds]);
    const data::Oracle& oracle = world.oracle(d);
    const std::vector<int> items = world.EvalItems(d);
    rl::Agent* agent = agents[ds].get();

    const eval::DeadlineSweep alg1 = eval::ComputeDeadlineSweep(
        bench::CostQGreedyFactory(agent), oracle, items, deadlines);
    const eval::DeadlineSweep qgreedy = eval::ComputeDeadlineSweep(
        bench::QGreedyFactory(agent), oracle, items, deadlines);
    const eval::DeadlineSweep random = eval::ComputeDeadlineSweep(
        [] { return std::make_unique<sched::RandomPolicy>(19); }, oracle,
        items, deadlines);
    const eval::DeadlineSweep star =
        eval::ComputeOptimalStarSweep(oracle, items, deadlines);

    bench::Banner("Fig. 10 (" + datasets[ds] +
                  ") — value recall vs per-image deadline");
    util::AsciiTable table;
    table.SetHeader({"deadline(s)", "cost_q_greedy(Alg1)", "q_greedy",
                     "random", "optimal*"});
    for (size_t k = 0; k < deadlines.size(); ++k) {
      table.AddRow(util::FormatDouble(deadlines[k], 2),
                   {alg1.avg_recall[k], qgreedy.avg_recall[k],
                    random.avg_recall[k], star.avg_recall[k]});
      ratio_rows[k].push_back(alg1.avg_recall[k] /
                              std::max(1e-9, star.avg_recall[k]));
    }
    table.Print(std::cout);

    // The 0.5 s headline (paper: +188.7-309.5% over random).
    const size_t half_second = 1;  // deadlines[1] == 0.5
    std::cout << "\nAlgorithm 1 vs random at 0.5 s deadline: +"
              << util::FormatDouble(100.0 * (alg1.avg_recall[half_second] /
                                                 std::max(1e-9,
                                                          random.avg_recall
                                                              [half_second]) -
                                             1.0),
                                    1)
              << "% recall (paper: +188.7-309.5%)\n";
  }

  bench::Banner(
      "Fig. 10(d) — performance ratio of Algorithm 1 to optimal* (classic "
      "guarantee 1-1/e = 0.632)");
  util::AsciiTable ratios;
  ratios.SetHeader({"deadline(s)", "mscoco", "mirflickr25", "places365",
                    "1-1/e"});
  for (size_t k = 0; k < deadlines.size(); ++k) {
    std::vector<double> row = ratio_rows[k];
    row.push_back(1.0 - 1.0 / std::exp(1.0));
    ratios.AddRow(util::FormatDouble(deadlines[k], 2), row);
  }
  ratios.Print(std::cout);
}

}  // namespace

int main() {
  Run();
  return 0;
}
