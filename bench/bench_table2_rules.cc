// Reproduces Table II (§III-B, §VI-C): the ten handcrafted model-execution
// rules, plus diagnostics the paper discusses qualitatively — how often each
// rule fires on real traffic and what the rule-based policy costs relative
// to random (rules help only marginally; see bench_fig06 for the curves).

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "core/labeling_service.h"
#include "util/check.h"
#include "eval/recall_curve.h"
#include "eval/world.h"
#include "sched/basic_policies.h"
#include "sched/rule_based.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace ams;

void Run() {
  bench::Banner("Table II — ten handcrafted model execution rules");
  const std::vector<sched::ExecutionRule> rules = sched::DefaultRules();
  util::AsciiTable table;
  table.SetHeader({"#", "rule"});
  for (size_t r = 0; r < rules.size(); ++r) {
    table.AddRow({std::to_string(r + 1), rules[r].description});
  }
  table.Print(std::cout);

  // Fire-rate diagnostics on MSCOCO traffic (single-threaded run so the
  // policy instance accumulates counts).
  eval::World world(eval::WorldConfig::FromEnv());
  const int d = world.IndexOf("mscoco");
  const data::Oracle& oracle = world.oracle(d);
  std::vector<int> items = world.EvalItems(d);
  if (items.size() > 300) items.resize(300);

  sched::PolicyOptions options;
  options.rules = rules;
  options.seed = 999;
  core::LabelingService service =
      core::LabelingServiceBuilder(&oracle.zoo())
          .WithOracle(&oracle)
          .WithMode(core::ExecutionMode::kSerial)
          .WithPolicy("rule_based", options)
          .WithRecallTarget(1.0)
          .WithKernelMode(core::KernelMode::kLean)  // only makespan is read
          .Build();
  double rule_time = 0.0;
  for (int item : items) {
    rule_time +=
        service.Submit(core::WorkItem::Stored(item)).schedule.makespan_s;
  }
  rule_time /= static_cast<double>(items.size());
  const auto* policy =
      dynamic_cast<const sched::RuleBasedPolicy*>(service.session_policy());
  AMS_CHECK(policy != nullptr,
            "rule_based session must expose a RuleBasedPolicy");

  const eval::FullRecallCosts random_costs = eval::ComputeFullRecallCosts(
      [] { return std::make_unique<sched::RandomPolicy>(7); }, oracle, items);
  const double random_time = util::Mean(random_costs.time_s);

  bench::Banner("Rule fire counts over " + std::to_string(items.size()) +
                " MSCOCO images");
  util::AsciiTable fires;
  fires.SetHeader({"#", "rule", "fired"});
  for (size_t r = 0; r < rules.size(); ++r) {
    fires.AddRow({std::to_string(r + 1), rules[r].description,
                  std::to_string(policy->rule_fire_counts()[r])});
  }
  fires.Print(std::cout);

  std::cout << "\nrule-based avg time to full recall: "
            << util::FormatDouble(rule_time, 2) << " s vs random "
            << util::FormatDouble(random_time, 2) << " s ("
            << util::FormatDouble(100.0 * (1.0 - rule_time / random_time), 1)
            << "% saved; paper: rules save only ~2% at full recall)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
